#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/units.h"

namespace mdw {
namespace {

TEST(CeilDivTest, ExactDivision) {
  EXPECT_EQ(CeilDiv(12, 4), 3);
  EXPECT_EQ(CeilDiv(0, 7), 0);
}

TEST(CeilDivTest, RoundsUp) {
  EXPECT_EQ(CeilDiv(13, 4), 4);
  EXPECT_EQ(CeilDiv(1, 8), 1);
  EXPECT_EQ(CeilDiv(7, 8), 1);
  EXPECT_EQ(CeilDiv(9, 8), 2);
}

TEST(CeilDivTest, LargeValues) {
  // The paper's n_max computation: 1,866,240,000 / (8 * 4096 * 4).
  EXPECT_EQ(1'866'240'000LL / (8 * 4096 * 4), 14'238);
  EXPECT_EQ(CeilDiv(1'866'240'000LL, 204), 9'148'236);
}

TEST(BitsForTest, PowersOfTwo) {
  EXPECT_EQ(BitsFor(1), 0);
  EXPECT_EQ(BitsFor(2), 1);
  EXPECT_EQ(BitsFor(4), 2);
  EXPECT_EQ(BitsFor(8), 3);
  EXPECT_EQ(BitsFor(16), 4);
}

TEST(BitsForTest, NonPowers) {
  EXPECT_EQ(BitsFor(3), 2);
  EXPECT_EQ(BitsFor(5), 3);
  EXPECT_EQ(BitsFor(15), 4);   // APB-1: 15 codes per class -> 4 bits
  EXPECT_EQ(BitsFor(144), 8);  // APB-1: 144 retailers -> 8 bits
  EXPECT_EQ(BitsFor(10), 4);   // APB-1: 10 stores per retailer -> 4 bits
}

TEST(BitsForTest, ZeroAndNegativeDegenerate) {
  EXPECT_EQ(BitsFor(0), 0);
  EXPECT_EQ(BitsFor(-5), 0);
}

TEST(IsPrimeTest, SmallNumbers) {
  EXPECT_FALSE(IsPrime(0));
  EXPECT_FALSE(IsPrime(1));
  EXPECT_TRUE(IsPrime(2));
  EXPECT_TRUE(IsPrime(3));
  EXPECT_FALSE(IsPrime(4));
  EXPECT_TRUE(IsPrime(97));
  EXPECT_FALSE(IsPrime(100));
  EXPECT_TRUE(IsPrime(101));
}

TEST(NextPrimeTest, FindsNextPrime) {
  EXPECT_EQ(NextPrime(100), 101);  // paper Sec 4.6: prefer a prime disk count
  EXPECT_EQ(NextPrime(101), 101);
  EXPECT_EQ(NextPrime(0), 2);
  EXPECT_EQ(NextPrime(20), 23);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1'000'000), b.Uniform(0, 1'000'000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Uniform(0, 1'000'000) != b.Uniform(0, 1'000'000)) ++differing;
  }
  EXPECT_GT(differing, 40);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.Uniform(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformRealInHalfOpenUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformReal();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.Zipf(100, 0.5);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, ZipfZeroThetaIsUniformish) {
  Rng rng(11);
  std::int64_t sum = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += rng.Zipf(100, 0.0);
  const double mean = static_cast<double>(sum) / n;
  EXPECT_NEAR(mean, 49.5, 2.0);
}

TEST(TablePrinterTest, FormatsIntegersWithSeparators) {
  EXPECT_EQ(TablePrinter::Int(0), "0");
  EXPECT_EQ(TablePrinter::Int(999), "999");
  EXPECT_EQ(TablePrinter::Int(1000), "1,000");
  EXPECT_EQ(TablePrinter::Int(5'189'760), "5,189,760");
  EXPECT_EQ(TablePrinter::Int(-1234), "-1,234");
}

TEST(TablePrinterTest, FormatsDoubles) {
  EXPECT_EQ(TablePrinter::Num(4.94, 1), "4.9");
  EXPECT_EQ(TablePrinter::Num(0.16, 2), "0.16");
  EXPECT_EQ(TablePrinter::Num(3.0, 0), "3");
}

TEST(TablePrinterTest, PrintsAlignedTable) {
  TablePrinter t({"a", "bee"});
  t.AddRow({"1", "2"});
  t.AddRow({"333", "4"});
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  t.Print(f);
  std::rewind(f);
  char buf[256] = {};
  const auto read = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  const std::string out(buf, read);
  EXPECT_NE(out.find("a    bee"), std::string::npos);
  EXPECT_NE(out.find("333  4"), std::string::npos);
}

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(kMiB, 1'048'576);
  EXPECT_DOUBLE_EQ(BytesToMiB(2 * kMiB), 2.0);
  EXPECT_DOUBLE_EQ(SecondsToMs(1.5), 1500.0);
  EXPECT_DOUBLE_EQ(MsToSeconds(250.0), 0.25);
}

}  // namespace
}  // namespace mdw
