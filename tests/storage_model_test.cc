#include <gtest/gtest.h>

#include "cost/storage_model.h"
#include "schema/apb1.h"

namespace mdw {
namespace {

TEST(WahEstimateTest, SparseCostsPerBit) {
  // 1,000 isolated set bits: ~2 words each.
  const auto bytes = EstimateWahBytes(10'000'000, 1'000);
  EXPECT_GT(bytes, 4'000);
  EXPECT_LT(bytes, 20'000);
}

TEST(WahEstimateTest, DenseCapsAtRaw) {
  const std::int64_t n = 1'000'000;
  const auto bytes = EstimateWahBytes(n, static_cast<double>(n) / 2);
  EXPECT_EQ(bytes, (n + 30) / 31 * 4);
}

TEST(WahEstimateTest, EmptyIsTiny) {
  EXPECT_LE(EstimateWahBytes(1'000'000'000, 0), 8);
}

TEST(WahEstimateTest, MonotoneInDensity) {
  const std::int64_t n = 50'000'000;
  std::int64_t previous = 0;
  for (double k = 100; k <= 1e7; k *= 10) {
    const auto bytes = EstimateWahBytes(n, k);
    EXPECT_GE(bytes, previous);
    previous = bytes;
  }
}

TEST(StorageModelTest, UnfragmentedApb1) {
  const auto schema = MakeApb1Schema();
  const Fragmentation none(&schema, {});
  const auto breakdown = EstimateStorage(none);
  // Fact table: 1.87G rows x 20 B = ~34.8 GiB.
  EXPECT_NEAR(static_cast<double>(breakdown.fact_bytes) / (1 << 30), 34.8,
              0.2);
  EXPECT_EQ(breakdown.bitmap_count, 76);
  // 76 bitmaps x ~222 MiB = ~16.5 GiB raw.
  EXPECT_NEAR(static_cast<double>(breakdown.bitmap_raw_bytes) / (1 << 30),
              16.5, 0.3);
  // At APB-1's index configuration WAH saves (almost) nothing: the
  // encoded slices are ~50% dense and the simple indices cover only
  // low-cardinality dimensions (densities 1/15 .. 1/2), where nearly
  // every 31-bit group contains set bits. That is precisely why the
  // paper uses *encoded* indices for the high-cardinality dimensions
  // instead of relying on compression.
  EXPECT_NEAR(static_cast<double>(breakdown.bitmap_compressed_bytes),
              static_cast<double>(breakdown.bitmap_raw_bytes),
              0.05 * static_cast<double>(breakdown.bitmap_raw_bytes));
}

TEST(StorageModelTest, CompressionRescuesSimpleHighCardinalityIndices) {
  // Counterfactual design: CUSTOMER with a *simple* index would need
  // 1,584 bitmaps (1,440 stores + 144 retailers) of density <= 1/144 —
  // raw storage explodes, but those sparse bitmaps compress > 10x.
  Dimension customer("customer",
                     Hierarchy({{"retailer", 144}, {"store", 1'440}}),
                     IndexKind::kSimple);
  Dimension channel("channel", Hierarchy({{"channel", 15}}),
                    IndexKind::kSimple);
  StarSchema schema("sales_simple_customer",
                    {std::move(customer), std::move(channel)}, 0.25);
  const Fragmentation none(&schema, {});
  const auto breakdown = EstimateStorage(none);
  const auto& cust = breakdown.per_dimension[0];
  EXPECT_EQ(cust.bitmaps, 1'584);
  EXPECT_LT(cust.compressed_bytes, cust.raw_bytes / 10);
}

TEST(StorageModelTest, FMonthGroupEliminationSavesBitmapStorage) {
  const auto schema = MakeApb1Schema();
  const Fragmentation none(&schema, {});
  const Fragmentation month_group(&schema,
                                  {{kApb1Time, 2}, {kApb1Product, 3}});
  const auto full = EstimateStorage(none);
  const auto reduced = EstimateStorage(month_group);
  EXPECT_EQ(reduced.bitmap_count, 32);
  // 44 of 76 bitmaps eliminated: raw bitmap storage shrinks accordingly.
  EXPECT_NEAR(static_cast<double>(reduced.bitmap_raw_bytes) /
                  static_cast<double>(full.bitmap_raw_bytes),
              32.0 / 76.0, 0.01);
  EXPECT_EQ(reduced.fact_bytes, full.fact_bytes);
}

TEST(StorageModelTest, EncodedSlicesIncompressible) {
  const auto schema = MakeApb1Schema();
  const Fragmentation none(&schema, {});
  const auto breakdown = EstimateStorage(none);
  for (const auto& d : breakdown.per_dimension) {
    if (schema.dimension(d.dim).index_kind() == IndexKind::kEncoded) {
      EXPECT_EQ(d.compressed_bytes, d.raw_bytes);
    } else {
      // Low-cardinality simple bitmaps are dense: WAH stays within the
      // 32/31 word overhead of the raw size.
      EXPECT_LE(static_cast<double>(d.compressed_bytes),
                1.04 * static_cast<double>(d.raw_bytes));
    }
  }
}

TEST(StorageModelTest, PerDimensionBitmapCountsMatchElimination) {
  const auto schema = MakeApb1Schema();
  const Fragmentation f(&schema, {{kApb1Time, 2}, {kApb1Product, 3}});
  const auto breakdown = EstimateStorage(f);
  ASSERT_EQ(breakdown.per_dimension.size(), 4u);
  EXPECT_EQ(breakdown.per_dimension[kApb1Product].bitmaps, 5);
  EXPECT_EQ(breakdown.per_dimension[kApb1Customer].bitmaps, 12);
  EXPECT_EQ(breakdown.per_dimension[kApb1Channel].bitmaps, 15);
  EXPECT_EQ(breakdown.per_dimension[kApb1Time].bitmaps, 0);
}

TEST(StorageModelTest, PaperBitmapSize223Mb) {
  // Sec. 4.4: "each bitmap occupies 223 MB".
  const auto schema = MakeApb1Schema();
  const Fragmentation none(&schema, {});
  const auto breakdown = EstimateStorage(none);
  const double per_bitmap_mb =
      static_cast<double>(breakdown.bitmap_raw_bytes) /
      breakdown.bitmap_count / 1e6;
  EXPECT_NEAR(per_bitmap_mb, 233.3, 1.0);  // 223 MiB == 233 MB
}

}  // namespace
}  // namespace mdw
