#include <gtest/gtest.h>

#include "alloc/declustering_analysis.h"
#include "schema/apb1.h"

namespace mdw {
namespace {

class DeclusteringTest : public ::testing::Test {
 protected:
  DeclusteringTest()
      : schema_(MakeApb1Schema()),
        frag_(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}}),
        planner_(&schema_, &frag_) {}

  DiskAllocation Make(int disks) {
    AllocationConfig config;
    config.num_disks = disks;
    return DiskAllocation(&frag_, config, 12);
  }

  StarSchema schema_;
  Fragmentation frag_;
  QueryPlanner planner_;
};

TEST_F(DeclusteringTest, Paper1CodeExampleD100FiveDisks) {
  // Paper Sec. 4.6: 1CODE accesses every 480th fragment; with d=100 and
  // gcd(480,100)=20, the 24 fragments land on only 5 disks — a 4.8x
  // parallelism loss.
  const auto alloc = Make(100);
  const auto plan = planner_.Plan(apb1_queries::OneCode(35));
  const auto report = AnalyzeDeclustering(plan, alloc);
  EXPECT_EQ(report.fragments_accessed, 24);
  EXPECT_EQ(report.disks_used, 5);
  EXPECT_EQ(report.ideal_disks, 24);
  EXPECT_NEAR(report.parallelism_loss, 4.8, 1e-9);
}

TEST_F(DeclusteringTest, PrimeDiskCountAvoidsClustering) {
  // With d=101 (prime), gcd(480,101)=1: all 24 fragments on 24 disks.
  const auto alloc = Make(101);
  const auto plan = planner_.Plan(apb1_queries::OneCode(35));
  const auto report = AnalyzeDeclustering(plan, alloc);
  EXPECT_EQ(report.disks_used, 24);
  EXPECT_NEAR(report.parallelism_loss, 1.0, 1e-9);
}

TEST_F(DeclusteringTest, MonthQueryUsesAllDisks) {
  // 1MONTH touches 480 consecutive fragments: they cover all 100 disks.
  const auto alloc = Make(100);
  const auto plan = planner_.Plan(apb1_queries::OneMonth(3));
  const auto report = AnalyzeDeclustering(plan, alloc);
  EXPECT_EQ(report.fragments_accessed, 480);
  EXPECT_EQ(report.disks_used, 100);
  EXPECT_NEAR(report.parallelism_loss, 1.0, 1e-9);
}

TEST(DisksForStrideTest, ClosedFormMatchesPaperExamples) {
  // stride 480, d=100: gcd 20 -> cycle 5 disks.
  EXPECT_EQ(DisksForStride(480, 24, 100), 5);
  // Prime d=101: full spread, capped by the 24 fragments.
  EXPECT_EQ(DisksForStride(480, 24, 101), 24);
  // Consecutive fragments (stride 1) use min(count, d).
  EXPECT_EQ(DisksForStride(1, 480, 100), 100);
  EXPECT_EQ(DisksForStride(1, 50, 100), 50);
}

TEST(DisksForStrideTest, PaperReverseOrderExample) {
  // Paper Sec. 4.6: with the other allocation order, 1MONTH queries are
  // restricted to 25 disks (gcd = 4 for stride 24 on 100 disks).
  EXPECT_EQ(DisksForStride(24, 480, 100), 25);
}

TEST(DisksForStrideTest, EdgeCases) {
  EXPECT_EQ(DisksForStride(0, 10, 100), 1);    // same disk over and over
  EXPECT_EQ(DisksForStride(480, 0, 100), 0);   // nothing accessed
  EXPECT_EQ(DisksForStride(7, 3, 100), 3);     // fewer fragments than cycle
}

TEST_F(DeclusteringTest, MatchesClosedFormAcrossDiskCounts) {
  const auto plan = planner_.Plan(apb1_queries::OneCode(35));
  for (int d = 90; d <= 110; ++d) {
    AllocationConfig config;
    config.num_disks = d;
    const DiskAllocation alloc(&frag_, config, 12);
    const auto report = AnalyzeDeclustering(plan, alloc);
    EXPECT_EQ(report.disks_used, DisksForStride(480, 24, d)) << "d=" << d;
  }
}

TEST_F(DeclusteringTest, RankDiskCountsPrefersPrimes) {
  const auto choices = RankDiskCounts(
      schema_, frag_, {apb1_queries::OneCode(35), apb1_queries::OneMonth(3)},
      96, 104);
  double prime_worst = 100, composite_best = 0;
  for (const auto& c : choices) {
    if (c.is_prime) {
      prime_worst = std::min(prime_worst, c.worst_parallelism_loss);
      EXPECT_NEAR(c.worst_parallelism_loss, 1.0, 1e-9)
          << "prime d=" << c.num_disks;
    } else {
      composite_best = std::max(composite_best, c.worst_parallelism_loss);
    }
  }
  EXPECT_GT(composite_best, 1.0);
}

}  // namespace
}  // namespace mdw
