// Buffer-pool tests: hit/miss/eviction accounting of the page-granular
// LRU pool, pin semantics (pinned frames are never victims; releasing a
// pin makes the frame evictable again), coalesced prefetch with its
// pool-flush cap, Reset, data integrity across evictions, concurrent
// pins of the same and different pages, pread/mmap backend parity, and
// the failure path: injected read errors and checksum mismatches surface
// as typed statuses, leave no frame (or pin) behind, retry under the
// pool's policy, and never poison later reads.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/crc32c.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/io_fault.h"
#include "storage/page_file.h"

namespace mdw::storage {
namespace {

constexpr std::int64_t kPageSize = 4096;
constexpr std::int64_t kValuesPerPage = kPageSize / 8;

/// Value stamped at slot `i` of page `p` in the fixture files.
std::int64_t ValueAt(std::int64_t page, std::int64_t i) {
  return page * 1'000'000 + i;
}

/// A page file on disk, deleted when the fixture dies (also on test
/// failure — gtest EXPECT/ASSERT unwind through destructors).
class TempPageFile {
 public:
  explicit TempPageFile(std::int64_t pages) {
    const char* base = std::getenv("TEST_TMPDIR");
    path_ = std::string(base != nullptr ? base : "/tmp") +
            "/mdw_buffer_pool_test_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".bin";
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    for (std::int64_t p = 0; p < pages; ++p) {
      for (std::int64_t i = 0; i < kValuesPerPage; ++i) {
        const std::int64_t v = ValueAt(p, i);
        out.write(reinterpret_cast<const char*>(&v), sizeof v);
      }
    }
  }
  ~TempPageFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Pin that must succeed (the fault-free common case of every test that
/// predates the failure path).
BufferPool::PageRef MustPin(BufferPool& pool, const PageFile& file,
                            std::int64_t page) {
  StatusOr<BufferPool::PageRef> ref = pool.Pin(file, page);
  EXPECT_TRUE(ref.ok()) << ref.status().ToString();
  return std::move(ref).value();
}

std::int64_t ReadValue(const BufferPool::PageRef& ref, std::int64_t i) {
  return reinterpret_cast<const std::int64_t*>(ref.data())[i];
}

/// The true CRC-32C of every fixture page (the image is fully determined
/// by ValueAt).
std::vector<std::uint32_t> CorrectChecksums(std::int64_t pages) {
  std::vector<std::uint32_t> crcs;
  std::vector<std::int64_t> buf(static_cast<std::size_t>(kValuesPerPage));
  for (std::int64_t p = 0; p < pages; ++p) {
    for (std::int64_t i = 0; i < kValuesPerPage; ++i) {
      buf[static_cast<std::size_t>(i)] = ValueAt(p, i);
    }
    crcs.push_back(Crc32c(buf.data(), static_cast<std::size_t>(kPageSize)));
  }
  return crcs;
}

TEST(BufferPoolTest, MissThenHitAccounting) {
  TempPageFile tmp(4);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(4, kPageSize);
  {
    auto ref = MustPin(pool, *file, 1);
    EXPECT_FALSE(ref.hit());
    EXPECT_EQ(ReadValue(ref, 3), ValueAt(1, 3));
  }
  {
    auto ref = MustPin(pool, *file, 1);
    EXPECT_TRUE(ref.hit());
  }
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.pages_read, 1);
  EXPECT_EQ(stats.bytes_read, kPageSize);
  EXPECT_EQ(stats.io_errors, 0);
  EXPECT_EQ(stats.io_retries, 0);
  EXPECT_EQ(stats.checksum_failures, 0);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsedWhenFull) {
  TempPageFile tmp(8);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(2, kPageSize);
  { auto r = MustPin(pool, *file, 0); }
  { auto r = MustPin(pool, *file, 1); }
  { auto r = MustPin(pool, *file, 0); }  // page 0 now MRU, page 1 LRU
  { auto r = MustPin(pool, *file, 2); }  // must evict page 1
  EXPECT_EQ(pool.stats().evictions, 1);
  EXPECT_TRUE(MustPin(pool, *file, 0).hit());
  EXPECT_FALSE(MustPin(pool, *file, 1).hit());  // was the victim
}

TEST(BufferPoolTest, PinnedPagesAreNeverEvicted) {
  TempPageFile tmp(8);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(2, kPageSize);
  auto pinned = MustPin(pool, *file, 0);  // held across the churn below
  for (std::int64_t p = 1; p < 8; ++p) {
    auto r = MustPin(pool, *file, p);
    EXPECT_EQ(ReadValue(r, 7), ValueAt(p, 7));
  }
  // Page 0 was the LRU candidate the whole time but stayed resident.
  EXPECT_TRUE(MustPin(pool, *file, 0).hit());
  EXPECT_EQ(ReadValue(pinned, 0), ValueAt(0, 0));
}

TEST(BufferPoolTest, ReleasedPinMakesFrameEvictableAgain) {
  TempPageFile tmp(8);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(2, kPageSize);
  {
    auto pinned = MustPin(pool, *file, 0);
  }  // released
  { auto r = MustPin(pool, *file, 1); }
  { auto r = MustPin(pool, *file, 2); }  // evicts page 0 now that it is unpinned
  EXPECT_FALSE(MustPin(pool, *file, 0).hit());
}

TEST(BufferPoolTest, DataSurvivesEvictionChurn) {
  constexpr std::int64_t kPages = 32;
  TempPageFile tmp(kPages);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(4, kPageSize);  // far smaller than the file
  for (int round = 0; round < 3; ++round) {
    for (std::int64_t p = 0; p < kPages; ++p) {
      auto ref = MustPin(pool, *file, p);
      EXPECT_EQ(ReadValue(ref, 0), ValueAt(p, 0));
      EXPECT_EQ(ReadValue(ref, kValuesPerPage - 1),
                ValueAt(p, kValuesPerPage - 1));
    }
  }
  // Cyclic sweep over a smaller pool: every access misses.
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.misses, 3 * kPages);
  EXPECT_GT(stats.evictions, 0);
}

TEST(BufferPoolTest, PrefetchFaultsRunOnceAndPinsCountAsHits) {
  TempPageFile tmp(32);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(64, kPageSize);
  EXPECT_EQ(pool.Prefetch(*file, 0, 8), 8);
  {
    const PoolStats stats = pool.stats();
    EXPECT_EQ(stats.prefetched, 8);
    EXPECT_EQ(stats.misses, 0);
    EXPECT_EQ(stats.pages_read, 8);
  }
  for (std::int64_t p = 0; p < 8; ++p) {
    auto ref = MustPin(pool, *file, p);
    EXPECT_TRUE(ref.hit());
    EXPECT_EQ(ReadValue(ref, 5), ValueAt(p, 5));
  }
  // Already-resident pages are skipped by a second prefetch.
  EXPECT_EQ(pool.Prefetch(*file, 0, 8), 0);
  EXPECT_EQ(pool.stats().prefetched, 8);
}

TEST(BufferPoolTest, PrefetchRunIsCappedAgainstPoolFlush) {
  TempPageFile tmp(32);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(16, kPageSize);
  // Cap is min(64, capacity / 4) = 4 pages per call.
  EXPECT_EQ(pool.Prefetch(*file, 0, 32), 4);
}

TEST(BufferPoolTest, ResetDropsPagesAndCounters) {
  TempPageFile tmp(8);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(4, kPageSize);
  { auto r = MustPin(pool, *file, 0); }
  { auto r = MustPin(pool, *file, 0); }
  pool.Reset();
  const PoolStats zero = pool.stats();
  EXPECT_EQ(zero.hits, 0);
  EXPECT_EQ(zero.misses, 0);
  EXPECT_EQ(zero.pages_read, 0);
  EXPECT_FALSE(MustPin(pool, *file, 0).hit());  // cold again
}

TEST(BufferPoolTest, ConcurrentPinsOfTheSamePageCoalesceTheRead) {
  TempPageFile tmp(4);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(4, kPageSize);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::int64_t> got(kThreads, -1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto ref = MustPin(pool, *file, 2);
      got[static_cast<std::size_t>(t)] = ReadValue(ref, t);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(got[static_cast<std::size_t>(t)], ValueAt(2, t));
  }
  const PoolStats stats = pool.stats();
  // Exactly one thread faulted the page; everyone else hit (resident or
  // load-in-flight).
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, kThreads - 1);
}

TEST(BufferPoolTest, ConcurrentScansOverSmallPoolStayCorrect) {
  constexpr std::int64_t kPages = 64;
  TempPageFile tmp(kPages);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(8, kPageSize);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<bool> ok(kThreads, false);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      bool all_good = true;
      for (std::int64_t p = 0; p < kPages; ++p) {
        const std::int64_t page = (p + t * 16) % kPages;
        auto ref = MustPin(pool, *file, page);
        all_good = all_good && ReadValue(ref, 9) == ValueAt(page, 9);
      }
      ok[static_cast<std::size_t>(t)] = all_good;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_TRUE(ok[static_cast<std::size_t>(t)]);
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kPages);
}

TEST(BufferPoolTest, MmapBackendReadsTheSameBytes) {
  TempPageFile tmp(8);
  auto pread_file =
      PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  auto mmap_file = PageFile::Open(IoBackend::kMmap, tmp.path(), kPageSize, 1);
  EXPECT_EQ(mmap_file->page_count(), pread_file->page_count());
  BufferPool pool(8, kPageSize);
  for (std::int64_t p = 0; p < 8; ++p) {
    auto a = MustPin(pool, *pread_file, p);
    auto b = MustPin(pool, *mmap_file, p);
    for (std::int64_t i = 0; i < kValuesPerPage; i += 100) {
      EXPECT_EQ(ReadValue(a, i), ReadValue(b, i));
    }
  }
}

// ---------------------------------------------------------------------------
// Failure path

TEST(BufferPoolTest, InjectedReadErrorSurfacesTypedAndLeavesPoolClean) {
  TempPageFile tmp(8);
  FaultPlan plan;
  plan.scripted.push_back({/*file_id=*/0, /*page=*/2, FaultKind::kEio,
                           /*count=*/1});
  FaultInjector injector(plan);
  auto file = injector.Wrap(
      PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0));
  BufferPool pool(4, kPageSize);

  // Establish LRU state that must survive the failure untouched.
  { auto r = MustPin(pool, *file, 0); }
  { auto r = MustPin(pool, *file, 1); }

  BufferPool::PinIo io;
  StatusOr<BufferPool::PageRef> failed = pool.Pin(*file, 2, &io);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
  EXPECT_EQ(io.io_errors, 1);
  EXPECT_EQ(io.io_retries, 0);

  // Nothing poisoned stays cached and no pin leaked: the prior residents
  // still hit, the failed page misses (fresh load, scripted fault spent),
  // and Reset() — which aborts on any outstanding pin — passes.
  EXPECT_TRUE(MustPin(pool, *file, 0).hit());
  EXPECT_TRUE(MustPin(pool, *file, 1).hit());
  auto retried = MustPin(pool, *file, 2);
  EXPECT_FALSE(retried.hit());
  EXPECT_EQ(ReadValue(retried, 4), ValueAt(2, 4));
  {
    const PoolStats stats = pool.stats();
    EXPECT_EQ(stats.io_errors, 1);
    EXPECT_EQ(stats.checksum_failures, 0);
  }
  { auto drop = std::move(retried); }  // release the last pin
  pool.Reset();
  EXPECT_EQ(pool.stats().io_errors, 0);
}

TEST(BufferPoolTest, RetryPolicyClearsTransientFault) {
  TempPageFile tmp(4);
  FaultPlan plan;
  plan.scripted.push_back({/*file_id=*/0, /*page=*/1, FaultKind::kEio,
                           /*count=*/1});
  FaultInjector injector(plan);
  auto file = injector.Wrap(
      PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0));
  BufferPool pool(4, kPageSize,
                  StorageRetryPolicy{/*max_attempts=*/2, /*backoff_us=*/0,
                                     /*backoff_multiplier=*/2.0,
                                     /*max_backoff_us=*/0});

  BufferPool::PinIo io;
  StatusOr<BufferPool::PageRef> ref = pool.Pin(*file, 1, &io);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  EXPECT_EQ(ReadValue(*ref, 0), ValueAt(1, 0));
  EXPECT_EQ(io.io_errors, 1);   // the first attempt failed...
  EXPECT_EQ(io.io_retries, 1);  // ...and the one retry succeeded
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.io_errors, 1);
  EXPECT_EQ(stats.io_retries, 1);
  EXPECT_EQ(stats.misses, 1);
}

TEST(BufferPoolTest, ChecksumMismatchSurfacesAsCorruption) {
  TempPageFile tmp(4);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  std::vector<std::uint32_t> crcs = CorrectChecksums(4);
  crcs[2] ^= 0x1u;  // page 2's stored checksum is wrong (at-rest damage)
  file->AttachChecksums(0, std::move(crcs));
  BufferPool pool(4, kPageSize);

  BufferPool::PinIo io;
  StatusOr<BufferPool::PageRef> bad = pool.Pin(*file, 2, &io);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(io.checksum_failures, 1);
  EXPECT_EQ(io.io_errors, 0);

  // At-rest corruption is sticky: a retry re-reads the same bytes and
  // fails again — but other pages verify fine, before and after.
  EXPECT_EQ(ReadValue(MustPin(pool, *file, 1), 8), ValueAt(1, 8));
  EXPECT_FALSE(pool.Pin(*file, 2).ok());
  EXPECT_EQ(ReadValue(MustPin(pool, *file, 3), 8), ValueAt(3, 8));
  EXPECT_EQ(pool.stats().checksum_failures, 2);
  pool.Reset();  // no leaked pins from the failures
}

TEST(BufferPoolTest, PrefetchDropsUnverifiablePagesAndKeepsTheRest) {
  TempPageFile tmp(16);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  std::vector<std::uint32_t> crcs = CorrectChecksums(16);
  crcs[3] ^= 0xFFu;
  file->AttachChecksums(0, std::move(crcs));
  BufferPool pool(64, kPageSize);

  BufferPool::PinIo io;
  EXPECT_EQ(pool.Prefetch(*file, 0, 8, &io), 7);  // page 3 dropped
  EXPECT_EQ(io.checksum_failures, 1);
  EXPECT_EQ(pool.stats().prefetched, 7);
  for (std::int64_t p = 0; p < 8; ++p) {
    if (p == 3) {
      // The dropped page was never cached; its demand fault re-verifies
      // and fails typed.
      StatusOr<BufferPool::PageRef> r = pool.Pin(*file, p);
      ASSERT_FALSE(r.ok());
      EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
    } else {
      auto r = MustPin(pool, *file, p);
      EXPECT_TRUE(r.hit());
      EXPECT_EQ(ReadValue(r, 1), ValueAt(p, 1));
    }
  }
  pool.Reset();
}

TEST(BufferPoolTest, ConcurrentPinsUnderInjectedFaultsRecover) {
  constexpr std::int64_t kPages = 32;
  TempPageFile tmp(kPages);
  FaultPlan plan;
  plan.seed = 42;
  plan.eio_rate = 0.3;
  FaultInjector injector(plan);
  auto file = injector.Wrap(
      PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0));
  BufferPool pool(8, kPageSize,
                  StorageRetryPolicy{/*max_attempts=*/4, /*backoff_us=*/0,
                                     /*backoff_multiplier=*/2.0,
                                     /*max_backoff_us=*/0});
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<bool> ok(kThreads, false);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      bool all_good = true;
      for (std::int64_t p = 0; p < kPages; ++p) {
        const std::int64_t page = (p + t * 4) % kPages;
        StatusOr<BufferPool::PageRef> ref = pool.Pin(*file, page);
        if (ref.ok()) {
          // A successful pin must serve intact bytes no matter how many
          // failures the loader (or a sibling waiter) weathered.
          all_good = all_good && ReadValue(*ref, 9) == ValueAt(page, 9);
        } else {
          all_good = all_good &&
                     ref.status().code() == StatusCode::kIoError;
        }
      }
      ok[static_cast<std::size_t>(t)] = all_good;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(t)]);
  }
  EXPECT_GT(pool.stats().io_retries, 0);
  // Every failed frame drained fully: no pins outstanding (Reset aborts
  // otherwise) and a clean sweep succeeds afterwards (each page's next
  // attempt number re-rolls the fault decision — with max_attempts=4 per
  // pin this converges fast; keep pinning until it does).
  pool.Reset();
  for (std::int64_t p = 0; p < kPages; ++p) {
    StatusOr<BufferPool::PageRef> ref = pool.Pin(*file, p);
    for (int tries = 0; !ref.ok() && tries < 8; ++tries) {
      ref = pool.Pin(*file, p);
    }
    ASSERT_TRUE(ref.ok()) << "page " << p << ": " << ref.status().ToString();
    EXPECT_EQ(ReadValue(*ref, 0), ValueAt(p, 0));
  }
}

}  // namespace
}  // namespace mdw::storage
