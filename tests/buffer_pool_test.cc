// Buffer-pool tests: hit/miss/eviction accounting of the page-granular
// LRU pool, pin semantics (pinned frames are never victims; releasing a
// pin makes the frame evictable again), coalesced prefetch with its
// pool-flush cap, Reset, data integrity across evictions, concurrent
// pins of the same and different pages, and pread/mmap backend parity.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace mdw::storage {
namespace {

constexpr std::int64_t kPageSize = 4096;
constexpr std::int64_t kValuesPerPage = kPageSize / 8;

/// Value stamped at slot `i` of page `p` in the fixture files.
std::int64_t ValueAt(std::int64_t page, std::int64_t i) {
  return page * 1'000'000 + i;
}

/// A page file on disk, deleted when the fixture dies (also on test
/// failure — gtest EXPECT/ASSERT unwind through destructors).
class TempPageFile {
 public:
  explicit TempPageFile(std::int64_t pages) {
    const char* base = std::getenv("TEST_TMPDIR");
    path_ = std::string(base != nullptr ? base : "/tmp") +
            "/mdw_buffer_pool_test_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".bin";
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    for (std::int64_t p = 0; p < pages; ++p) {
      for (std::int64_t i = 0; i < kValuesPerPage; ++i) {
        const std::int64_t v = ValueAt(p, i);
        out.write(reinterpret_cast<const char*>(&v), sizeof v);
      }
    }
  }
  ~TempPageFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::int64_t ReadValue(const BufferPool::PageRef& ref, std::int64_t i) {
  return reinterpret_cast<const std::int64_t*>(ref.data())[i];
}

TEST(BufferPoolTest, MissThenHitAccounting) {
  TempPageFile tmp(4);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(4, kPageSize);
  {
    auto ref = pool.Pin(*file, 1);
    EXPECT_FALSE(ref.hit());
    EXPECT_EQ(ReadValue(ref, 3), ValueAt(1, 3));
  }
  {
    auto ref = pool.Pin(*file, 1);
    EXPECT_TRUE(ref.hit());
  }
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.pages_read, 1);
  EXPECT_EQ(stats.bytes_read, kPageSize);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsedWhenFull) {
  TempPageFile tmp(8);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(2, kPageSize);
  { auto r = pool.Pin(*file, 0); }
  { auto r = pool.Pin(*file, 1); }
  { auto r = pool.Pin(*file, 0); }  // page 0 now MRU, page 1 LRU
  { auto r = pool.Pin(*file, 2); }  // must evict page 1
  EXPECT_EQ(pool.stats().evictions, 1);
  EXPECT_TRUE(pool.Pin(*file, 0).hit());
  EXPECT_FALSE(pool.Pin(*file, 1).hit());  // was the victim
}

TEST(BufferPoolTest, PinnedPagesAreNeverEvicted) {
  TempPageFile tmp(8);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(2, kPageSize);
  auto pinned = pool.Pin(*file, 0);  // held across the churn below
  for (std::int64_t p = 1; p < 8; ++p) {
    auto r = pool.Pin(*file, p);
    EXPECT_EQ(ReadValue(r, 7), ValueAt(p, 7));
  }
  // Page 0 was the LRU candidate the whole time but stayed resident.
  EXPECT_TRUE(pool.Pin(*file, 0).hit());
  EXPECT_EQ(ReadValue(pinned, 0), ValueAt(0, 0));
}

TEST(BufferPoolTest, ReleasedPinMakesFrameEvictableAgain) {
  TempPageFile tmp(8);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(2, kPageSize);
  {
    auto pinned = pool.Pin(*file, 0);
  }  // released
  { auto r = pool.Pin(*file, 1); }
  { auto r = pool.Pin(*file, 2); }  // evicts page 0 now that it is unpinned
  EXPECT_FALSE(pool.Pin(*file, 0).hit());
}

TEST(BufferPoolTest, DataSurvivesEvictionChurn) {
  constexpr std::int64_t kPages = 32;
  TempPageFile tmp(kPages);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(4, kPageSize);  // far smaller than the file
  for (int round = 0; round < 3; ++round) {
    for (std::int64_t p = 0; p < kPages; ++p) {
      auto ref = pool.Pin(*file, p);
      EXPECT_EQ(ReadValue(ref, 0), ValueAt(p, 0));
      EXPECT_EQ(ReadValue(ref, kValuesPerPage - 1),
                ValueAt(p, kValuesPerPage - 1));
    }
  }
  // Cyclic sweep over a smaller pool: every access misses.
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.misses, 3 * kPages);
  EXPECT_GT(stats.evictions, 0);
}

TEST(BufferPoolTest, PrefetchFaultsRunOnceAndPinsCountAsHits) {
  TempPageFile tmp(32);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(64, kPageSize);
  EXPECT_EQ(pool.Prefetch(*file, 0, 8), 8);
  {
    const PoolStats stats = pool.stats();
    EXPECT_EQ(stats.prefetched, 8);
    EXPECT_EQ(stats.misses, 0);
    EXPECT_EQ(stats.pages_read, 8);
  }
  for (std::int64_t p = 0; p < 8; ++p) {
    auto ref = pool.Pin(*file, p);
    EXPECT_TRUE(ref.hit());
    EXPECT_EQ(ReadValue(ref, 5), ValueAt(p, 5));
  }
  // Already-resident pages are skipped by a second prefetch.
  EXPECT_EQ(pool.Prefetch(*file, 0, 8), 0);
  EXPECT_EQ(pool.stats().prefetched, 8);
}

TEST(BufferPoolTest, PrefetchRunIsCappedAgainstPoolFlush) {
  TempPageFile tmp(32);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(16, kPageSize);
  // Cap is min(64, capacity / 4) = 4 pages per call.
  EXPECT_EQ(pool.Prefetch(*file, 0, 32), 4);
}

TEST(BufferPoolTest, ResetDropsPagesAndCounters) {
  TempPageFile tmp(8);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(4, kPageSize);
  { auto r = pool.Pin(*file, 0); }
  { auto r = pool.Pin(*file, 0); }
  pool.Reset();
  const PoolStats zero = pool.stats();
  EXPECT_EQ(zero.hits, 0);
  EXPECT_EQ(zero.misses, 0);
  EXPECT_EQ(zero.pages_read, 0);
  EXPECT_FALSE(pool.Pin(*file, 0).hit());  // cold again
}

TEST(BufferPoolTest, ConcurrentPinsOfTheSamePageCoalesceTheRead) {
  TempPageFile tmp(4);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(4, kPageSize);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::int64_t> got(kThreads, -1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto ref = pool.Pin(*file, 2);
      got[static_cast<std::size_t>(t)] = ReadValue(ref, t);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(got[static_cast<std::size_t>(t)], ValueAt(2, t));
  }
  const PoolStats stats = pool.stats();
  // Exactly one thread faulted the page; everyone else hit (resident or
  // load-in-flight).
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, kThreads - 1);
}

TEST(BufferPoolTest, ConcurrentScansOverSmallPoolStayCorrect) {
  constexpr std::int64_t kPages = 64;
  TempPageFile tmp(kPages);
  auto file = PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  BufferPool pool(8, kPageSize);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<bool> ok(kThreads, false);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      bool all_good = true;
      for (std::int64_t p = 0; p < kPages; ++p) {
        const std::int64_t page = (p + t * 16) % kPages;
        auto ref = pool.Pin(*file, page);
        all_good = all_good && ReadValue(ref, 9) == ValueAt(page, 9);
      }
      ok[static_cast<std::size_t>(t)] = all_good;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_TRUE(ok[static_cast<std::size_t>(t)]);
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kPages);
}

TEST(BufferPoolTest, MmapBackendReadsTheSameBytes) {
  TempPageFile tmp(8);
  auto pread_file =
      PageFile::Open(IoBackend::kPread, tmp.path(), kPageSize, 0);
  auto mmap_file = PageFile::Open(IoBackend::kMmap, tmp.path(), kPageSize, 1);
  EXPECT_EQ(mmap_file->page_count(), pread_file->page_count());
  BufferPool pool(8, kPageSize);
  for (std::int64_t p = 0; p < 8; ++p) {
    auto a = pool.Pin(*pread_file, p);
    auto b = pool.Pin(*mmap_file, p);
    for (std::int64_t i = 0; i < kValuesPerPage; i += 100) {
      EXPECT_EQ(ReadValue(a, i), ReadValue(b, i));
    }
  }
}

}  // namespace
}  // namespace mdw::storage
