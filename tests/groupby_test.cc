// Grouped-aggregation tests: parity of MDHF grouped execution against the
// brute-force grouped full scan across seeds x shards x workers x
// summaries (RAM and file-backed), coverage accounting of aligned vs
// non-aligned groupings, rollup consistency across hierarchy levels,
// deterministic top-k, the plan-cache signature extension, and the SQL
// round trip through Warehouse::ExecuteSql.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/mini_warehouse.h"
#include "core/result_table.h"
#include "core/warehouse.h"
#include "fragment/plan_cache.h"
#include "fragment/star_query.h"
#include "schema/apb1.h"
#include "workload/query_parser.h"

namespace mdw {
namespace {

std::vector<FragAttr> MonthGroup() {
  return {{kApb1Time, 2}, {kApb1Product, 3}};
}

// Grouped shapes spanning every coverage class: group at the
// fragmentation level (time.month, product.group), above it (time.quarter,
// time.year), below it (product.class), and on a non-fragmentation
// dimension (customer.store, channel.channel); predicates range from
// hierarchy-aligned (covered fragments) to residual and absent.
std::vector<StarQuery> GroupedSweep() {
  std::vector<StarQuery> queries;
  queries.push_back(
      apb1_queries::OneQuarter(2).WithGroupBy({kApb1Time, 2}));
  queries.push_back(StarQuery("ALL_BY_MONTH", {}).WithGroupBy({kApb1Time, 2}));
  queries.push_back(StarQuery("ALL_BY_QUARTER", {}).WithGroupBy({kApb1Time, 1}));
  queries.push_back(StarQuery("ALL_BY_YEAR", {}).WithGroupBy({kApb1Time, 0}));
  queries.push_back(
      apb1_queries::OneMonth(5).WithGroupBy({kApb1Product, 3}));
  queries.push_back(
      apb1_queries::OneQuarter(1).WithGroupBy({kApb1Product, 4}));
  queries.push_back(
      apb1_queries::OneMonthOneGroup(3, 7).WithGroupBy({kApb1Product, 5}));
  queries.push_back(
      apb1_queries::OneMonth(5).WithGroupBy({kApb1Customer, 1}));
  queries.push_back(
      apb1_queries::OneStore(17).WithGroupBy({kApb1Channel, 0}));
  queries.push_back(StarQuery("IN_BY_GROUP",
                              {{kApb1Product, 5, {1, 2, 50}},
                               {kApb1Time, 2, {0, 6}}})
                        .WithGroupBy({kApb1Product, 3}));
  return queries;
}

/// mkdtemp directory removed (recursively) when the guard dies.
class TempDir {
 public:
  TempDir() {
    const char* base = std::getenv("TEST_TMPDIR");
    std::string tmpl =
        std::string(base != nullptr ? base : "/tmp") + "/mdw_groupby_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* got = ::mkdtemp(buf.data());
    EXPECT_NE(got, nullptr);
    path_ = got != nullptr ? got : tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Warehouse MakeFacade(int shards, int workers, std::uint64_t seed = 42,
                     bool summaries = true, std::string storage_path = {}) {
  WarehouseConfig cfg{.schema = MakeTinyApb1Schema()};
  cfg.fragmentation = MonthGroup();
  cfg.backend = BackendKind::kMaterialized;
  cfg.seed = seed;
  cfg.num_workers = workers;
  cfg.num_shards = shards;
  cfg.enable_fragment_summaries = summaries;
  cfg.storage_path = std::move(storage_path);
  return Warehouse(std::move(cfg));
}

/// Grouped keys/counts/sums must match the ground truth exactly;
/// rows_summarized is coverage accounting, checked separately (the full
/// scan never summarizes).
void ExpectSameGroups(const std::vector<GroupRow>& expected,
                      const std::vector<GroupRow>& actual,
                      const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].key, actual[i].key) << label << " row " << i;
    EXPECT_EQ(expected[i].rows, actual[i].rows) << label << " row " << i;
    EXPECT_EQ(expected[i].units_sold, actual[i].units_sold)
        << label << " row " << i;
    EXPECT_EQ(expected[i].dollar_sales_cents, actual[i].dollar_sales_cents)
        << label << " row " << i;
  }
}

// ---------------------------------------------------------------------------
// Parity + determinism: grouped MDHF execution == brute-force grouped
// full scan, bit-identical at seeds {7, 42, 123} x shards {1, 4} x
// workers {1, 2, 8} x summaries {on, off}.

class GroupByParitySweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t /*seed*/, int /*shards*/, int /*workers*/,
                     bool /*summaries*/>> {};

TEST_P(GroupByParitySweep, GroupedExecutionMatchesBruteForce) {
  const auto [seed, shards, workers, summaries] = GetParam();
  const Warehouse wh = MakeFacade(shards, workers, seed, summaries);
  const Warehouse reference = MakeFacade(1, 1, seed, summaries);
  const MiniWarehouse& mini = *wh.materialized();
  for (const auto& query : GroupedSweep()) {
    const auto expected = mini.ExecuteFullScanGrouped(query);
    const auto outcome = wh.Execute(query);
    ASSERT_TRUE(outcome.status.ok()) << query.name();
    ASSERT_TRUE(outcome.table.has_value()) << query.name();
    ExpectSameGroups(expected, outcome.table->rows, query.name());

    // Bit-identical record at any worker x shard count: the whole table
    // (rows_summarized included) equals the serial unsharded run.
    const auto ref = reference.Execute(query);
    ASSERT_TRUE(ref.table.has_value()) << query.name();
    EXPECT_EQ(*outcome.table, *ref.table) << query.name();

    // The group rows partition the execution-wide counters: row counts
    // sum to the scalar aggregate's, rows_summarized to the counter.
    ASSERT_TRUE(outcome.aggregate.has_value()) << query.name();
    std::int64_t rows = 0, units = 0, dollars = 0, summarized = 0;
    for (const auto& g : outcome.table->rows) {
      rows += g.rows;
      units += g.units_sold;
      dollars += g.dollar_sales_cents;
      summarized += g.rows_summarized;
    }
    EXPECT_EQ(rows, outcome.aggregate->rows) << query.name();
    EXPECT_EQ(units, outcome.aggregate->units_sold) << query.name();
    EXPECT_EQ(dollars, outcome.aggregate->dollar_sales_cents) << query.name();
    EXPECT_EQ(summarized, outcome.rows_summarized) << query.name();
    if (!summaries) EXPECT_EQ(summarized, 0) << query.name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByShardsByWorkersBySummaries, GroupByParitySweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(7, 42, 123),
                       ::testing::Values(1, 4), ::testing::Values(1, 2, 8),
                       ::testing::Bool()),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param)) + "_w" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) ? "_sum" : "_scan");
    });

// File-backed parity: the paged store answers grouped queries with the
// byte-identical table the RAM store produces.
TEST(GroupByPagedTest, FileBackedTablesMatchRam) {
  TempDir dir;
  const Warehouse ram = MakeFacade(4, 8);
  const Warehouse paged = MakeFacade(4, 8, /*seed=*/42, /*summaries=*/true,
                                     dir.path());
  for (const auto& query : GroupedSweep()) {
    const auto r = ram.Execute(query);
    const auto p = paged.Execute(query);
    ASSERT_TRUE(r.table.has_value()) << query.name();
    ASSERT_TRUE(p.table.has_value()) << query.name();
    EXPECT_EQ(*r.table, *p.table) << query.name();
    // The paged brute-force reference agrees too (cursor-driven scan).
    ExpectSameGroups(paged.materialized()->ExecuteFullScanGrouped(query),
                     p.table->rows, query.name());
  }
}

// ---------------------------------------------------------------------------
// Coverage accounting: fragmentation-aligned groupings answer from the
// prefix sums alone; non-aligned groupings force the scan path.

TEST(GroupByCoverageTest, AlignedGroupByAnswersFromSummariesAlone) {
  const Warehouse wh = MakeFacade(4, 8);
  // Groups at and above the time fragmentation level, with a
  // hierarchy-aligned predicate: every fragment is fully covered.
  for (const Depth depth : {Depth{2}, Depth{1}}) {
    const auto query =
        apb1_queries::OneQuarter(2).WithGroupBy({kApb1Time, depth});
    const auto outcome = wh.Execute(query);
    ASSERT_TRUE(outcome.table.has_value());
    EXPECT_FALSE(outcome.table->rows.empty());
    EXPECT_EQ(outcome.rows_scanned, 0) << "depth " << depth;
    EXPECT_GT(outcome.rows_summarized, 0) << "depth " << depth;
    EXPECT_EQ(outcome.fragments_summarized, outcome.fragments_processed)
        << "depth " << depth;
  }
}

TEST(GroupByCoverageTest, BelowLevelGroupingForcesTheScanPath) {
  const Warehouse wh = MakeFacade(4, 8);
  // product.class sits below the product fragmentation level: per-group
  // partials need the fact rows, so nothing is summarized even though the
  // same predicate WITHOUT grouping is fully covered.
  const auto grouped =
      wh.Execute(apb1_queries::OneQuarter(2).WithGroupBy({kApb1Product, 4}));
  EXPECT_EQ(grouped.rows_summarized, 0);
  EXPECT_EQ(grouped.fragments_summarized, 0);
  EXPECT_GT(grouped.rows_scanned, 0);
  const auto scalar = wh.Execute(apb1_queries::OneQuarter(2));
  EXPECT_EQ(scalar.rows_scanned, 0);
  EXPECT_EQ(scalar.fragments_summarized, scalar.fragments_processed);
  // Both read the same rows.
  ASSERT_TRUE(grouped.aggregate.has_value());
  ASSERT_TRUE(scalar.aggregate.has_value());
  EXPECT_EQ(*grouped.aggregate, *scalar.aggregate);
}

TEST(GroupByCoverageTest, UngroupedTableIsTheDegenerateZeroGroupRow) {
  const Warehouse wh = MakeFacade(4, 8);
  const auto query = apb1_queries::OneMonthOneGroup(3, 7);
  const auto outcome = wh.Execute(query);
  ASSERT_TRUE(outcome.table.has_value());
  ASSERT_TRUE(outcome.aggregate.has_value());
  ASSERT_EQ(outcome.table->rows.size(), 1u);
  const GroupRow& row = outcome.table->rows[0];
  EXPECT_EQ(row.key, 0);
  EXPECT_EQ(row.rows, outcome.aggregate->rows);
  EXPECT_EQ(row.units_sold, outcome.aggregate->units_sold);
  EXPECT_EQ(row.dollar_sales_cents, outcome.aggregate->dollar_sales_cents);
  EXPECT_EQ(row.rows_summarized, outcome.rows_summarized);
  EXPECT_FALSE(outcome.table->group_by.has_value());
}

// ---------------------------------------------------------------------------
// Rollup: grouping at a coarser level L equals re-grouping the level-(L+1)
// table by the hierarchy's ancestor mapping (drill-down inverse).

void ExpectRollupConsistent(const Warehouse& wh, const StarQuery& base,
                            DimId dim, Depth coarse) {
  const auto& h = wh.schema().dimension(dim).hierarchy();
  const std::int64_t ratio =
      h.Cardinality(coarse + 1) / h.Cardinality(coarse);
  const auto fine = wh.Execute(base.WithGroupBy({dim, coarse + 1}));
  const auto rolled = wh.Execute(base.WithGroupBy({dim, coarse}));
  ASSERT_TRUE(fine.table.has_value());
  ASSERT_TRUE(rolled.table.has_value());
  std::map<std::int64_t, GroupRow> regrouped;
  for (const auto& g : fine.table->rows) {
    GroupRow& r = regrouped[g.key / ratio];
    r.key = g.key / ratio;
    r.rows += g.rows;
    r.units_sold += g.units_sold;
    r.dollar_sales_cents += g.dollar_sales_cents;
  }
  std::vector<GroupRow> expected;
  for (const auto& [key, row] : regrouped) expected.push_back(row);
  ExpectSameGroups(expected, rolled.table->rows,
                   base.name() + " dim " + std::to_string(dim) + " depth " +
                       std::to_string(coarse));
}

TEST(GroupByRollupTest, RollupEqualsRegroupingOfTheFinerLevel) {
  const Warehouse wh = MakeFacade(4, 8);
  const auto all = StarQuery("ALL", {});
  // Time: month -> quarter -> year spans the fragmentation level; product
  // family -> group and group -> class cross it.
  ExpectRollupConsistent(wh, all, kApb1Time, 1);
  ExpectRollupConsistent(wh, all, kApb1Time, 0);
  ExpectRollupConsistent(wh, all, kApb1Product, 2);
  ExpectRollupConsistent(wh, all, kApb1Product, 3);
  ExpectRollupConsistent(wh, apb1_queries::OneQuarter(2), kApb1Product, 2);
  ExpectRollupConsistent(wh, apb1_queries::OneStore(17), kApb1Time, 1);
}

// ---------------------------------------------------------------------------
// Top-k: ORDER BY ... LIMIT k is exactly the k-prefix of the fully sorted
// table, with deterministic ascending-key tie-breaks.

TEST(TopKTest, TopKEqualsThePrefixOfTheSortedTable) {
  const Warehouse wh = MakeFacade(4, 8);
  const auto base = apb1_queries::OneQuarter(2).WithGroupBy({kApb1Product, 3});
  const auto specs = std::vector<AggregateSpec>{
      AggregateSpec::Default(),
      {{{AggFn::kCount, MeasureId::kUnitsSold},
        {AggFn::kAvg, MeasureId::kDollarSales}}}};
  for (const auto& spec : specs) {
    for (const bool descending : {false, true}) {
      for (int item = 0; item < 2; ++item) {
        const auto sorted = wh.Execute(base.WithAggregates(spec).WithOrderBy(
            {item, descending, /*limit=*/0}));
        ASSERT_TRUE(sorted.table.has_value());
        for (const std::int64_t k : {std::int64_t{1}, std::int64_t{3},
                                     std::int64_t{5}, std::int64_t{1000}}) {
          const auto topk = wh.Execute(base.WithAggregates(spec).WithOrderBy(
              {item, descending, k}));
          ASSERT_TRUE(topk.table.has_value());
          std::vector<GroupRow> prefix = sorted.table->rows;
          if (k < static_cast<std::int64_t>(prefix.size())) {
            prefix.resize(static_cast<std::size_t>(k));
          }
          EXPECT_EQ(topk.table->rows, prefix)
              << "item " << item << " desc " << descending << " k " << k;
        }
      }
    }
  }
}

TEST(TopKTest, TiesBreakOnAscendingGroupKey) {
  // Hand-built partials with deliberate ties: MakeResultTable must order
  // tied groups by ascending key whatever the sort direction.
  const AggregateSpec spec = AggregateSpec::Default();
  std::vector<GroupRow> rows;
  rows.push_back({0, 2, 10, 100, 0});
  rows.push_back({1, 2, 30, 100, 0});
  rows.push_back({2, 2, 10, 100, 0});
  rows.push_back({3, 2, 30, 100, 0});
  rows.push_back({4, 2, 20, 100, 0});
  const auto desc = MakeResultTable(spec, GroupBy{kApb1Product, 3},
                                    OrderBy{0, true, 0}, rows);
  std::vector<std::int64_t> keys;
  for (const auto& g : desc.rows) keys.push_back(g.key);
  EXPECT_EQ(keys, (std::vector<std::int64_t>{1, 3, 4, 0, 2}));
  const auto asc2 = MakeResultTable(spec, GroupBy{kApb1Product, 3},
                                    OrderBy{0, false, 2}, rows);
  keys.clear();
  for (const auto& g : asc2.rows) keys.push_back(g.key);
  EXPECT_EQ(keys, (std::vector<std::int64_t>{0, 2}));
  // Item 1 (dollar sums) is all-tied: any direction degenerates to
  // ascending key order.
  const auto tied = MakeResultTable(spec, GroupBy{kApb1Product, 3},
                                    OrderBy{1, true, 3}, rows);
  keys.clear();
  for (const auto& g : tied.rows) keys.push_back(g.key);
  EXPECT_EQ(keys, (std::vector<std::int64_t>{0, 1, 2}));
}

TEST(TopKTest, AvgOrderingUsesExactArithmetic) {
  // 7/2 = 3.5 vs 10/3 = 3.33..: exact cross-multiplication must rank the
  // first higher even though both round to 3 in integer division.
  const AggregateSpec spec{{{AggFn::kAvg, MeasureId::kUnitsSold}}};
  std::vector<GroupRow> rows;
  rows.push_back({0, 3, 10, 0, 0});
  rows.push_back({1, 2, 7, 0, 0});
  const auto t = MakeResultTable(spec, GroupBy{kApb1Product, 3},
                                 OrderBy{0, true, 0}, rows);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[0].key, 1);
  EXPECT_EQ(t.rows[1].key, 0);
  EXPECT_DOUBLE_EQ(t.Value(0, 0), 3.5);
}

// ---------------------------------------------------------------------------
// Plan-cache signature: the aggregate list and grouping are part of a
// query's identity; ORDER BY / LIMIT are post-aggregation and are not.

TEST(GroupBySignatureTest, AggregatesAndGroupingSeparateSignatures) {
  const auto base = apb1_queries::OneQuarter(2);
  std::set<std::string> signatures;
  signatures.insert(CanonicalQuerySignature(base));
  signatures.insert(
      CanonicalQuerySignature(base.WithGroupBy({kApb1Time, 2})));
  signatures.insert(
      CanonicalQuerySignature(base.WithGroupBy({kApb1Time, 1})));
  signatures.insert(
      CanonicalQuerySignature(base.WithGroupBy({kApb1Product, 3})));
  signatures.insert(CanonicalQuerySignature(base.WithAggregates(
      {{{AggFn::kCount, MeasureId::kUnitsSold}}})));
  signatures.insert(CanonicalQuerySignature(base.WithAggregates(
      {{{AggFn::kAvg, MeasureId::kDollarSales}}})));
  // Six distinct identities: no collisions.
  EXPECT_EQ(signatures.size(), 6u);

  // The explicit default spec IS the historic implicit one.
  EXPECT_EQ(CanonicalQuerySignature(base),
            CanonicalQuerySignature(
                base.WithAggregates(AggregateSpec::Default())));

  // ORDER BY ... LIMIT never changes the plan, so it never changes the
  // signature — top-k variants share one cache entry.
  const auto grouped = base.WithGroupBy({kApb1Product, 3});
  EXPECT_EQ(CanonicalQuerySignature(grouped),
            CanonicalQuerySignature(grouped.WithOrderBy({1, true, 5})));
}

// ---------------------------------------------------------------------------
// SQL round trip: ExecuteSql == Execute of the hand-built equivalent.

TEST(GroupBySqlTest, SqlRoundTripMatchesHandBuiltQueries) {
  const Warehouse wh = MakeFacade(4, 8);
  const struct {
    const char* sql;
    StarQuery query;
  } cases[] = {
      {"SELECT SUM(UnitsSold), SUM(DollarSales) FROM tiny_sales "
       "WHERE time.quarter = 2 GROUP BY product.group",
       apb1_queries::OneQuarter(2).WithGroupBy({kApb1Product, 3})},
      {"SELECT SUM(DollarSales) FROM tiny_sales WHERE time.month = 5 "
       "GROUP BY customer.store ORDER BY 1 DESC LIMIT 5",
       apb1_queries::OneMonth(5)
           .WithAggregates({{{AggFn::kSum, MeasureId::kDollarSales}}})
           .WithGroupBy({kApb1Customer, 1})
           .WithOrderBy({0, true, 5})},
      {"SELECT COUNT(*), AVG(DollarSales) FROM tiny_sales "
       "GROUP BY time.quarter ORDER BY AVG(DollarSales)",
       StarQuery("ALL", {})
           .WithAggregates({{{AggFn::kCount, MeasureId::kUnitsSold},
                             {AggFn::kAvg, MeasureId::kDollarSales}}})
           .WithGroupBy({kApb1Time, 1})
           .WithOrderBy({1, false, 0})},
  };
  for (const auto& c : cases) {
    const auto via_sql = wh.ExecuteSql(c.sql);
    ASSERT_TRUE(via_sql.ok()) << c.sql << " -> " << via_sql.status().message();
    const auto direct = wh.Execute(c.query);
    ASSERT_TRUE(via_sql->table.has_value()) << c.sql;
    ASSERT_TRUE(direct.table.has_value()) << c.sql;
    EXPECT_EQ(*via_sql->table, *direct.table) << c.sql;
    EXPECT_EQ(via_sql->rows_scanned, direct.rows_scanned) << c.sql;
    EXPECT_EQ(via_sql->rows_summarized, direct.rows_summarized) << c.sql;
  }
}

TEST(GroupBySqlTest, MalformedSqlReturnsInvalidArgument) {
  const Warehouse wh = MakeFacade(1, 1);
  const auto bad =
      wh.ExecuteSql("SELECT SUM(UnitsSold) FROM tiny_sales GROUP BY time");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  const auto worse = wh.ExecuteSql("DROP TABLE tiny_sales");
  ASSERT_FALSE(worse.ok());
  EXPECT_EQ(worse.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mdw
