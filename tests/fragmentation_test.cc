#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "fragment/fragmentation.h"
#include "schema/apb1.h"

namespace mdw {
namespace {

class FragmentationTest : public ::testing::Test {
 protected:
  FragmentationTest() : schema_(MakeApb1Schema()) {}
  StarSchema schema_;
};

TEST_F(FragmentationTest, FMonthGroupHas11520Fragments) {
  // Paper Sec. 4.1: F_MonthGroup yields 24 * 480 = 11,520 fragments.
  const Fragmentation f(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}});
  EXPECT_EQ(f.FragmentCount(), 11'520);
  EXPECT_EQ(f.num_attrs(), 2);
  EXPECT_EQ(f.CardOf(0), 24);
  EXPECT_EQ(f.CardOf(1), 480);
}

TEST_F(FragmentationTest, Table6FragmentCounts) {
  // Paper Table 6: 11,520 / 23,040 / 345,600 fragments.
  const Fragmentation group(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}});
  const Fragmentation klass(&schema_, {{kApb1Time, 2}, {kApb1Product, 4}});
  const Fragmentation code(&schema_, {{kApb1Time, 2}, {kApb1Product, 5}});
  EXPECT_EQ(group.FragmentCount(), 11'520);
  EXPECT_EQ(klass.FragmentCount(), 23'040);
  EXPECT_EQ(code.FragmentCount(), 345'600);
}

TEST_F(FragmentationTest, Table6BitmapFragmentSizes) {
  // Paper Table 6: bitmap fragment sizes 4.9 / 2.5 / 0.16 pages.
  const Fragmentation group(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}});
  const Fragmentation klass(&schema_, {{kApb1Time, 2}, {kApb1Product, 4}});
  const Fragmentation code(&schema_, {{kApb1Time, 2}, {kApb1Product, 5}});
  EXPECT_NEAR(group.BitmapFragmentPages(), 4.94, 0.01);
  EXPECT_NEAR(klass.BitmapFragmentPages(), 2.47, 0.01);
  EXPECT_NEAR(code.BitmapFragmentPages(), 0.165, 0.005);
}

TEST_F(FragmentationTest, FinestFragmentationCount) {
  // Paper Sec. 4.4: all dimensions at the lowest level -> 7.5 billion
  // fragments (more than fact tuples).
  const Fragmentation finest(&schema_, {{kApb1Time, 2},
                                        {kApb1Product, 5},
                                        {kApb1Customer, 1},
                                        {kApb1Channel, 0}});
  EXPECT_EQ(finest.FragmentCount(), 7'464'960'000LL);
  EXPECT_GT(finest.FragmentCount(), schema_.FactCount());
}

TEST_F(FragmentationTest, FourDimCoarse) {
  // Paper Sec. 4.4: {quarter, group, retailer, channel} -> ~9 million? The
  // text says "about 9 million": 8 * 480 * 144 * 15 = 8,294,400.
  const Fragmentation f(&schema_, {{kApb1Time, 1},
                                   {kApb1Product, 3},
                                   {kApb1Customer, 0},
                                   {kApb1Channel, 0}});
  EXPECT_EQ(f.FragmentCount(), 8'294'400);
}

TEST_F(FragmentationTest, FragmentIdRoundTrips) {
  const Fragmentation f(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}});
  for (FragId id = 0; id < f.FragmentCount(); id += 997) {
    EXPECT_EQ(f.FragmentIdOf(f.CoordsOf(id)), id);
  }
  EXPECT_EQ(f.FragmentIdOf(f.CoordsOf(11'519)), 11'519);
}

TEST_F(FragmentationTest, LastAttributeVariesFastest) {
  // Fig. 2: groups consecutive within a month.
  const Fragmentation f(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}});
  EXPECT_EQ(f.FragmentIdOf({0, 0}), 0);
  EXPECT_EQ(f.FragmentIdOf({0, 1}), 1);
  EXPECT_EQ(f.FragmentIdOf({1, 0}), 480);
  EXPECT_EQ(f.FragmentIdOf({23, 479}), 11'519);
}

TEST_F(FragmentationTest, FragmentOfRowUsesAncestors) {
  const Fragmentation f(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}});
  // Row: code 35 (group 1), store 7, channel 3, month 5.
  const FragId id = f.FragmentOfRow({35, 7, 3, 5});
  EXPECT_EQ(id, 5 * 480 + 1);
}

TEST_F(FragmentationTest, TuplesPerFragment) {
  const Fragmentation f(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}});
  // 1,866,240,000 / 11,520 = 162,000 tuples.
  EXPECT_DOUBLE_EQ(f.TuplesPerFragment(), 162'000.0);
  EXPECT_NEAR(f.FactPagesPerFragment(), 794.1, 0.1);
}

TEST_F(FragmentationTest, DimLookups) {
  const Fragmentation f(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}});
  EXPECT_EQ(f.IndexOfDim(kApb1Time), 0);
  EXPECT_EQ(f.IndexOfDim(kApb1Product), 1);
  EXPECT_EQ(f.IndexOfDim(kApb1Customer), -1);
  EXPECT_EQ(f.FragDepthOf(kApb1Time), 2);
  EXPECT_EQ(f.FragDepthOf(kApb1Product), 3);
  EXPECT_EQ(f.FragDepthOf(kApb1Channel), -1);
}

TEST_F(FragmentationTest, Label) {
  const Fragmentation f(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}});
  EXPECT_EQ(f.Label(), "{time::month, product::group}");
  const Fragmentation none(&schema_, {});
  EXPECT_EQ(none.Label(), "{unfragmented}");
}

TEST_F(FragmentationTest, UnfragmentedBaseline) {
  const Fragmentation none(&schema_, {});
  EXPECT_EQ(none.FragmentCount(), 1);
  EXPECT_DOUBLE_EQ(none.TuplesPerFragment(),
                   static_cast<double>(schema_.FactCount()));
}

TEST_F(FragmentationTest, OneDimensionalFragmentation) {
  // F_opt of Table 3: {customer::store}.
  const Fragmentation f(&schema_, {{kApb1Customer, 1}});
  EXPECT_EQ(f.FragmentCount(), 1'440);
  EXPECT_DOUBLE_EQ(f.TuplesPerFragment(), 1'296'000.0);
}

// Property: rows mapped over the whole leaf space hit every fragment of a
// two-dimensional fragmentation and partition evenly for aligned schemas.
TEST_F(FragmentationTest, RowMappingCoversAllFragments) {
  const auto tiny = MakeTinyApb1Schema();
  const Fragmentation f(&tiny, {{kApb1Time, 2}, {kApb1Product, 3}});
  std::set<FragId> seen;
  const auto& ph = tiny.dimension(kApb1Product).hierarchy();
  const auto& th = tiny.dimension(kApb1Time).hierarchy();
  for (std::int64_t code = 0; code < ph.LeafCardinality(); ++code) {
    for (std::int64_t month = 0; month < th.LeafCardinality(); ++month) {
      seen.insert(f.FragmentOfRow({code, 0, 0, month}));
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), f.FragmentCount());
}

class FragmentationParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

// Property: FragmentOfRow is consistent with CoordsOf: the row's ancestors
// equal the fragment's coordinates.
TEST_P(FragmentationParamTest, RowAncestorsMatchFragmentCoords) {
  const auto schema = MakeApb1Schema();
  const auto [time_depth, product_depth] = GetParam();
  const Fragmentation f(&schema, {{kApb1Time, time_depth},
                                  {kApb1Product, product_depth}});
  Rng rng(static_cast<std::uint64_t>(time_depth * 10 + product_depth));
  for (int i = 0; i < 200; ++i) {
    std::vector<std::int64_t> row = {
        rng.Uniform(0, 14'399), rng.Uniform(0, 1'439), rng.Uniform(0, 14),
        rng.Uniform(0, 23)};
    const auto coords = f.CoordsOf(f.FragmentOfRow(row));
    EXPECT_EQ(coords[0],
              schema.dimension(kApb1Time).hierarchy().AncestorOfLeaf(
                  row[kApb1Time], time_depth));
    EXPECT_EQ(coords[1],
              schema.dimension(kApb1Product).hierarchy().AncestorOfLeaf(
                  row[kApb1Product], product_depth));
  }
}

INSTANTIATE_TEST_SUITE_P(
    DepthCombos, FragmentationParamTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0, 1, 2, 3, 4, 5)));

}  // namespace
}  // namespace mdw
