#include <gtest/gtest.h>

#include <cmath>

#include "core/advisor.h"
#include "schema/apb1.h"

namespace mdw {
namespace {

AdvisorOptions PaperOptions() {
  AdvisorOptions options;
  options.thresholds.min_bitmap_fragment_pages = 4.0;
  options.thresholds.max_fragments = 100'000;
  options.thresholds.max_bitmaps = 76;
  options.thresholds.min_fragments = 100;  // one fragment per disk
  return options;
}

std::vector<WeightedQuery> PaperMix() {
  return {{apb1_queries::OneMonth(3), 1.0},
          {apb1_queries::OneStore(7), 1.0},
          {apb1_queries::OneCodeOneQuarter(35, 2), 1.0}};
}

TEST(AdvisorTest, EvaluatesAll167Candidates) {
  const auto schema = MakeApb1Schema();
  const AllocationAdvisor advisor(&schema, PaperOptions());
  const auto all = advisor.Evaluate(PaperMix());
  EXPECT_EQ(all.size(), 167u);
}

TEST(AdvisorTest, AdmissibleSortedByIo) {
  const auto schema = MakeApb1Schema();
  const AllocationAdvisor advisor(&schema, PaperOptions());
  const auto recommended = advisor.Recommend(PaperMix());
  ASSERT_FALSE(recommended.empty());
  for (std::size_t i = 1; i < recommended.size(); ++i) {
    EXPECT_LE(recommended[i - 1].total_io_mib, recommended[i].total_io_mib);
  }
  for (const auto& c : recommended) {
    EXPECT_TRUE(c.violations.empty());
    EXPECT_GE(c.fragments, 100);
    EXPECT_GE(c.bitmap_fragment_pages, 4.0);
  }
}

TEST(AdvisorTest, RejectsFMonthCode) {
  // F_MonthCode violates the bitmap-fragment-size threshold (paper 6.3:
  // "a fragmentation such as F_MonthCode must be avoided").
  const auto schema = MakeApb1Schema();
  const AllocationAdvisor advisor(&schema, PaperOptions());
  const auto all = advisor.Evaluate(PaperMix());
  bool found = false;
  for (const auto& c : all) {
    if (c.fragmentation.Label() == "{product::code, time::month}" ||
        c.fragmentation.Label() == "{time::month, product::code}") {
      found = true;
      EXPECT_FALSE(c.violations.empty());
    }
  }
  EXPECT_TRUE(found);
}

TEST(AdvisorTest, RecommendationBeatsMedianSubstantially) {
  const auto schema = MakeApb1Schema();
  const AllocationAdvisor advisor(&schema, PaperOptions());
  const auto recommended = advisor.Recommend(PaperMix());
  ASSERT_GT(recommended.size(), 4u);
  const double best = recommended.front().total_io_mib;
  const double median = recommended[recommended.size() / 2].total_io_mib;
  EXPECT_LT(best, median);
}

TEST(AdvisorTest, CustomerFragmentationWinsForStoreOnlyMix) {
  // If the workload is pure 1STORE, a customer fragmentation must rank
  // first (Table 3's F_opt logic).
  const auto schema = MakeApb1Schema();
  AdvisorOptions options = PaperOptions();
  options.thresholds.min_fragments = 0;
  const AllocationAdvisor advisor(&schema, options);
  const auto recommended =
      advisor.Recommend({{apb1_queries::OneStore(7), 1.0}});
  ASSERT_FALSE(recommended.empty());
  EXPECT_GE(recommended.front().fragmentation.IndexOfDim(kApb1Customer), 0);
}

TEST(AdvisorTest, TimeFragmentationWinsForMonthOnlyMix) {
  const auto schema = MakeApb1Schema();
  AdvisorOptions options = PaperOptions();
  options.thresholds.min_fragments = 0;
  const AllocationAdvisor advisor(&schema, options);
  const auto recommended =
      advisor.Recommend({{apb1_queries::OneMonth(3), 1.0}});
  ASSERT_FALSE(recommended.empty());
  EXPECT_GE(recommended.front().fragmentation.IndexOfDim(kApb1Time), 0);
}

TEST(AdvisorTest, StricterThresholdsShrinkTheCandidateSet) {
  const auto schema = MakeApb1Schema();
  AdvisorOptions loose = PaperOptions();
  loose.thresholds.min_bitmap_fragment_pages = 1.0;
  AdvisorOptions strict = PaperOptions();
  strict.thresholds.min_bitmap_fragment_pages = 8.0;
  const auto n_loose =
      AllocationAdvisor(&schema, loose).Recommend(PaperMix()).size();
  const auto n_strict =
      AllocationAdvisor(&schema, strict).Recommend(PaperMix()).size();
  EXPECT_GT(n_loose, n_strict);
  EXPECT_GT(n_strict, 0u);
}

TEST(AdvisorTest, ResponseTimeRankingProducesFiniteTimes) {
  const auto schema = MakeApb1Schema();
  AdvisorOptions options = PaperOptions();
  options.ranking = AdvisorRanking::kResponseTime;
  options.hardware.num_disks = 100;
  options.hardware.num_nodes = 20;
  const AllocationAdvisor advisor(&schema, options);
  const auto recommended = advisor.Recommend(PaperMix());
  ASSERT_FALSE(recommended.empty());
  for (std::size_t i = 1; i < recommended.size(); ++i) {
    EXPECT_LE(recommended[i - 1].total_response_ms,
              recommended[i].total_response_ms);
  }
  EXPECT_GT(recommended.front().total_response_ms, 0);
  EXPECT_TRUE(std::isfinite(recommended.front().total_response_ms));
}

TEST(AdvisorTest, ResponseRankingCanDifferFromIoRanking) {
  // Volume and time rankings agree on the broad ordering but need not on
  // details; both must put a time-fragmented candidate near the top for
  // a month-heavy mix.
  const auto schema = MakeApb1Schema();
  AdvisorOptions io_opts = PaperOptions();
  AdvisorOptions rt_opts = PaperOptions();
  rt_opts.ranking = AdvisorRanking::kResponseTime;
  const std::vector<WeightedQuery> mix = {{apb1_queries::OneMonth(3), 1.0}};
  const auto io_best =
      AllocationAdvisor(&schema, io_opts).Recommend(mix).front();
  const auto rt_best =
      AllocationAdvisor(&schema, rt_opts).Recommend(mix).front();
  EXPECT_GE(io_best.fragmentation.IndexOfDim(kApb1Time), 0);
  EXPECT_GE(rt_best.fragmentation.IndexOfDim(kApb1Time), 0);
}

TEST(AdvisorTest, StorageBudgetRejectsBitmapHeavyDesigns) {
  const auto schema = MakeApb1Schema();
  AdvisorOptions tight = PaperOptions();
  tight.max_bitmap_storage_bytes = 8LL << 30;  // 8 GiB (76 bitmaps = 16.5)
  AdvisorOptions loose = PaperOptions();
  const auto n_tight =
      AllocationAdvisor(&schema, tight).Recommend(PaperMix()).size();
  const auto n_loose =
      AllocationAdvisor(&schema, loose).Recommend(PaperMix()).size();
  EXPECT_LT(n_tight, n_loose);
  // Everything recommended under the budget actually fits it.
  for (const auto& c :
       AllocationAdvisor(&schema, tight).Recommend(PaperMix())) {
    EXPECT_LE(c.bitmap_storage_bytes, tight.max_bitmap_storage_bytes);
  }
}

TEST(AdvisorTest, RejectedCandidatesCarryInfiniteCost) {
  const auto schema = MakeApb1Schema();
  const AllocationAdvisor advisor(&schema, PaperOptions());
  const auto all = advisor.Evaluate(PaperMix());
  for (const auto& c : all) {
    if (!c.violations.empty()) {
      EXPECT_TRUE(std::isinf(c.total_io_mib));
    }
  }
}

}  // namespace
}  // namespace mdw
