// Tests of the plan-first execution pipeline (docs/ARCHITECTURE.md): a
// batch of N queries must cost exactly N QueryPlanner::Plan invocations
// end to end, plan-accepting engine entry points must match their
// plan-internally compatibility overloads, and cached plans must execute
// identically to freshly derived ones on both backends.

#include <gtest/gtest.h>

#include <vector>

#include "core/mini_warehouse.h"
#include "core/warehouse.h"
#include "fragment/star_query.h"
#include "schema/apb1.h"
#include "sim/simulator.h"

namespace mdw {
namespace {

constexpr std::uint64_t kSeed = 42;

std::vector<FragAttr> MonthGroup() {
  return {{kApb1Time, 2}, {kApb1Product, 3}};
}

Warehouse Tiny(BackendKind backend, std::size_t plan_cache_capacity = 256) {
  SimConfig sim;
  sim.num_disks = 20;
  sim.num_nodes = 4;
  return Warehouse({.schema = MakeTinyApb1Schema(),
                    .fragmentation = MonthGroup(),
                    .backend = backend,
                    .sim = sim,
                    .seed = kSeed,
                    .plan_cache_capacity = plan_cache_capacity});
}

// Distinct queries, so a cache-enabled warehouse still derives one plan
// per query (no accidental hits hiding a 2N bug as N).
std::vector<StarQuery> DistinctQueries() {
  return {apb1_queries::OneMonthOneGroup(1, 10),
          apb1_queries::OneMonth(5),
          apb1_queries::OneQuarter(2),
          apb1_queries::OneCode(30),
          apb1_queries::OneGroupOneStore(7, 17)};
}

// ---------------------------------------------------------------------------
// The acceptance criterion: N queries -> exactly N plan derivations.

TEST(PlanFirstCountingTest, MaterializedBatchDerivesExactlyOnePlanPerQuery) {
  const Warehouse wh = Tiny(BackendKind::kMaterialized);
  const auto queries = DistinctQueries();
  const auto before = QueryPlanner::LifetimePlanCount();
  wh.ExecuteBatch(queries);
  EXPECT_EQ(QueryPlanner::LifetimePlanCount() - before, queries.size());
}

TEST(PlanFirstCountingTest, SimulatedBatchDerivesExactlyOnePlanPerQuery) {
  const Warehouse wh = Tiny(BackendKind::kSimulated);
  const auto queries = DistinctQueries();
  const auto before = QueryPlanner::LifetimePlanCount();
  wh.ExecuteBatch(queries, /*streams=*/2);
  EXPECT_EQ(QueryPlanner::LifetimePlanCount() - before, queries.size());
}

TEST(PlanFirstCountingTest, SingleExecuteDerivesExactlyOnePlan) {
  for (const auto backend :
       {BackendKind::kMaterialized, BackendKind::kSimulated}) {
    const Warehouse wh = Tiny(backend);
    const auto before = QueryPlanner::LifetimePlanCount();
    wh.Execute(apb1_queries::OneMonthOneGroup(3, 7));
    EXPECT_EQ(QueryPlanner::LifetimePlanCount() - before, 1u)
        << ToString(backend);
  }
}

TEST(PlanFirstCountingTest, CachedRepeatsDeriveNothing) {
  const Warehouse wh = Tiny(BackendKind::kMaterialized);
  const auto q = apb1_queries::OneMonthOneGroup(3, 7);
  wh.Execute(q);  // populates the cache
  const auto before = QueryPlanner::LifetimePlanCount();
  wh.Execute(q);
  wh.ExecuteBatch(std::vector<StarQuery>{q, q, q});
  EXPECT_EQ(QueryPlanner::LifetimePlanCount(), before);
}

// ---------------------------------------------------------------------------
// Plan-accepting engine entry points match the planning overloads.

TEST(PlanFirstEngineTest, MiniWarehousePlanOverloadMatchesCompat) {
  const MiniWarehouse mini(MakeTinyApb1Schema(), kSeed);
  const Fragmentation frag(&mini.schema(), MonthGroup());
  const QueryPlanner planner(&mini.schema(), &frag);
  for (const auto& q : DistinctQueries()) {
    const auto compat = mini.ExecuteWithFragmentation(q, frag);
    const auto plan_first = mini.ExecuteWithPlan(q, planner.Plan(q));
    EXPECT_EQ(plan_first.result, compat.result) << q.name();
    EXPECT_EQ(plan_first.rows_scanned, compat.rows_scanned) << q.name();
    EXPECT_EQ(plan_first.fragments_processed, compat.fragments_processed);
    EXPECT_EQ(plan_first.query_class, compat.query_class);
    EXPECT_EQ(plan_first.io_class, compat.io_class);
  }
}

TEST(PlanFirstEngineTest, SimulatorPlanOverloadMatchesCompat) {
  SimConfig sim;
  sim.num_disks = 20;
  sim.num_nodes = 4;
  const auto schema = MakeApb1Schema();
  const Fragmentation frag(&schema, MonthGroup());
  const Simulator simulator(&schema, &frag, sim);
  const QueryPlanner planner(&schema, &frag);

  const std::vector<StarQuery> queries = {
      apb1_queries::OneMonthOneGroup(3, 41), apb1_queries::OneQuarter(2)};
  std::vector<QueryPlan> plans;
  for (const auto& q : queries) plans.push_back(planner.Plan(q));

  const auto compat = simulator.RunSingleUser(queries);
  const auto plan_first = simulator.RunSingleUser(queries, plans);
  EXPECT_EQ(plan_first.avg_response_ms, compat.avg_response_ms);
  EXPECT_EQ(plan_first.disk_ios, compat.disk_ios);
  EXPECT_EQ(plan_first.makespan_ms, compat.makespan_ms);

  const auto compat_mu = simulator.RunMultiUser(queries, 2);
  const auto plan_first_mu = simulator.RunMultiUser(queries, plans, 2);
  EXPECT_EQ(plan_first_mu.makespan_ms, compat_mu.makespan_ms);
  EXPECT_EQ(plan_first_mu.disk_ios, compat_mu.disk_ios);
}

TEST(PlanFirstEngineTest, SimulatorRejectsForeignPlans) {
  SimConfig sim;
  sim.num_disks = 20;
  sim.num_nodes = 4;
  const auto schema = MakeApb1Schema();
  const Fragmentation month_group(&schema, MonthGroup());
  const Fragmentation month_only(&schema, {{kApb1Time, 2}});
  const Simulator simulator(&schema, &month_group, sim);

  const std::vector<StarQuery> queries = {apb1_queries::OneMonth(3)};
  const std::vector<QueryPlan> foreign = {
      QueryPlanner(&schema, &month_only).Plan(queries[0])};
  EXPECT_DEATH(simulator.RunSingleUser(queries, foreign),
               "different schema or fragmentation");
}

// ---------------------------------------------------------------------------
// Parity: cached plans and fresh plans execute identically.

TEST(PlanFirstParityTest, CachedAndFreshPlansAgreeOnMaterialized) {
  const Warehouse cached = Tiny(BackendKind::kMaterialized);
  const Warehouse fresh =
      Tiny(BackendKind::kMaterialized, /*plan_cache_capacity=*/0);
  for (const auto& q : DistinctQueries()) {
    for (int round = 0; round < 2; ++round) {  // round 2 hits the cache
      const auto a = cached.Execute(q);
      const auto b = fresh.Execute(q);
      ASSERT_TRUE(a.aggregate.has_value()) << q.name();
      EXPECT_EQ(*a.aggregate, *b.aggregate) << q.name();
      EXPECT_EQ(a.rows_scanned, b.rows_scanned) << q.name();
      EXPECT_EQ(a.query_class, b.query_class) << q.name();
      EXPECT_EQ(a.io_class, b.io_class) << q.name();
      EXPECT_EQ(a.fragments_processed, b.fragments_processed) << q.name();
    }
  }
  EXPECT_GT(cached.plan_cache_stats().hits, 0u);
}

TEST(PlanFirstParityTest, CachedAndFreshPlansAgreeOnSimulated) {
  const Warehouse cached = Tiny(BackendKind::kSimulated);
  const Warehouse fresh =
      Tiny(BackendKind::kSimulated, /*plan_cache_capacity=*/0);
  const auto q = apb1_queries::OneMonthOneGroup(3, 7);
  for (int round = 0; round < 2; ++round) {
    const auto a = cached.Execute(q);
    const auto b = fresh.Execute(q);
    ASSERT_TRUE(a.sim.has_value());
    EXPECT_EQ(a.response_ms, b.response_ms);
    EXPECT_EQ(a.sim->disk_ios, b.sim->disk_ios);
    EXPECT_EQ(a.sim->disk_pages, b.sim->disk_pages);
  }
  EXPECT_EQ(cached.plan_cache_stats().hits, 1u);
}

}  // namespace
}  // namespace mdw
