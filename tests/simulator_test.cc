#include <gtest/gtest.h>

#include <algorithm>

#include "fragment/query_planner.h"
#include "schema/apb1.h"
#include "sim/simulator.h"

namespace mdw {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest()
      : schema_(MakeApb1Schema()),
        month_group_(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}}) {}

  SimConfig SmallConfig() {
    SimConfig config;
    config.num_disks = 20;
    config.num_nodes = 4;
    config.tasks_per_node = 4;
    return config;
  }

  StarSchema schema_;
  Fragmentation month_group_;
};

TEST_F(SimulatorTest, SingleFragmentQueryCompletes) {
  Simulator sim(&schema_, &month_group_, SmallConfig());
  const auto result =
      sim.RunSingleUser({apb1_queries::OneMonthOneGroup(3, 41)});
  ASSERT_EQ(result.response_ms.size(), 1u);
  EXPECT_GT(result.avg_response_ms, 0);
  EXPECT_EQ(result.subqueries, 1);
  // One fragment of 795 pages at granule 8 -> 100 fact I/Os, no bitmaps.
  EXPECT_EQ(result.disk_ios, 100);
  EXPECT_EQ(result.disk_pages, 795);
}

TEST_F(SimulatorTest, SubqueryCountMatchesPlanFragments) {
  Simulator sim(&schema_, &month_group_, SmallConfig());
  const auto result = sim.RunSingleUser({apb1_queries::OneMonth(3)});
  EXPECT_EQ(result.subqueries, 480);
}

TEST_F(SimulatorTest, DeterministicForSameSeed) {
  Simulator a(&schema_, &month_group_, SmallConfig());
  Simulator b(&schema_, &month_group_, SmallConfig());
  const auto qa = apb1_queries::OneGroupOneStore(41, 7);
  const auto ra = a.RunSingleUser({qa});
  const auto rb = b.RunSingleUser({qa});
  EXPECT_DOUBLE_EQ(ra.avg_response_ms, rb.avg_response_ms);
  EXPECT_EQ(ra.disk_ios, rb.disk_ios);
  EXPECT_EQ(ra.events, rb.events);
}

TEST_F(SimulatorTest, CpuBoundQuerySpeedsUpWithProcessors) {
  // 1MONTH is CPU-bound (paper Fig. 4): more nodes -> faster.
  SimConfig small = SmallConfig();
  small.num_disks = 100;
  small.num_nodes = 5;
  SimConfig big = small;
  big.num_nodes = 20;
  Simulator sim_small(&schema_, &month_group_, small);
  Simulator sim_big(&schema_, &month_group_, big);
  const auto q = apb1_queries::OneMonth(3);
  const auto r_small = sim_small.RunSingleUser({q});
  const auto r_big = sim_big.RunSingleUser({q});
  EXPECT_LT(r_big.avg_response_ms, r_small.avg_response_ms);
  // Roughly linear: 4x nodes should give at least 2.5x improvement.
  EXPECT_GT(r_small.avg_response_ms / r_big.avg_response_ms, 2.5);
}

TEST_F(SimulatorTest, DiskBoundQuerySpeedsUpWithDisks) {
  // 1GROUP1STORE reads bitmaps + sparse fact pages: disk-bound.
  SimConfig few = SmallConfig();
  few.num_disks = 10;
  few.num_nodes = 10;
  few.tasks_per_node = 6;
  SimConfig many = few;
  many.num_disks = 60;
  Simulator sim_few(&schema_, &month_group_, few);
  Simulator sim_many(&schema_, &month_group_, many);
  const auto q = apb1_queries::OneGroupOneStore(41, 7);
  const auto r_few = sim_few.RunSingleUser({q});
  const auto r_many = sim_many.RunSingleUser({q});
  EXPECT_LT(r_many.avg_response_ms, r_few.avg_response_ms);
}

TEST_F(SimulatorTest, ParallelBitmapIoHelpsAtLowConcurrency) {
  // Paper Sec. 6.2: parallel bitmap I/O improves response times.
  SimConfig parallel = SmallConfig();
  parallel.num_disks = 100;
  parallel.num_nodes = 4;
  parallel.tasks_per_node = 1;
  SimConfig serial = parallel;
  serial.parallel_bitmap_io = false;
  Simulator sim_par(&schema_, &month_group_, parallel);
  Simulator sim_ser(&schema_, &month_group_, serial);
  const auto q = apb1_queries::OneGroupOneStore(41, 7);
  const auto r_par = sim_par.RunSingleUser({q});
  const auto r_ser = sim_ser.RunSingleUser({q});
  EXPECT_LT(r_par.avg_response_ms, r_ser.avg_response_ms);
}

TEST_F(SimulatorTest, MessagesAccountedPerSubquery) {
  Simulator sim(&schema_, &month_group_, SmallConfig());
  const auto result = sim.RunSingleUser({apb1_queries::OneMonth(3)});
  // One assignment + one result message per subquery.
  EXPECT_EQ(result.messages, 2 * result.subqueries);
}

TEST_F(SimulatorTest, GlobalTaskCapLimitsParallelism) {
  SimConfig capped = SmallConfig();
  capped.global_task_cap = 1;
  SimConfig uncapped = SmallConfig();
  Simulator sim_capped(&schema_, &month_group_, capped);
  Simulator sim_uncapped(&schema_, &month_group_, uncapped);
  const auto q = apb1_queries::OneQuarter(2);  // 1,440 fragments
  const auto r1 = sim_capped.RunSingleUser({q});
  const auto r2 = sim_uncapped.RunSingleUser({q});
  EXPECT_GT(r1.avg_response_ms, 2 * r2.avg_response_ms);
}

TEST_F(SimulatorTest, FragmentClusteringReducesSubqueries) {
  SimConfig clustered = SmallConfig();
  clustered.fragment_cluster_factor = 4;
  Simulator sim(&schema_, &month_group_, clustered);
  const auto result = sim.RunSingleUser({apb1_queries::OneMonth(3)});
  EXPECT_EQ(result.subqueries, 120);  // 480 fragments / 4 per subquery
}

TEST_F(SimulatorTest, MultiUserThroughput) {
  Simulator sim(&schema_, &month_group_, SmallConfig());
  std::vector<StarQuery> queries;
  for (int i = 0; i < 6; ++i) {
    queries.push_back(apb1_queries::OneMonthOneGroup(i, 41 + i));
  }
  const auto serial = sim.RunSingleUser(queries);
  const auto concurrent = sim.RunMultiUser(queries, 3);
  EXPECT_EQ(concurrent.response_ms.size(), 6u);
  // Concurrency shortens the makespan.
  EXPECT_LT(concurrent.makespan_ms, serial.makespan_ms);
  EXPECT_GT(concurrent.ThroughputPerSecond(),
            serial.ThroughputPerSecond());
}

TEST_F(SimulatorTest, MultiUserAttributesResponsesByQueryId) {
  // An expensive query submitted FIRST completes last under concurrency:
  // the completion-order vector starts with a cheap query, while the
  // by-query vector keeps the expensive time at its submission index.
  Simulator sim(&schema_, &month_group_, SmallConfig());
  std::vector<StarQuery> queries = {apb1_queries::OneStore(5)};
  for (int i = 0; i < 5; ++i) {
    queries.push_back(apb1_queries::OneMonthOneGroup(i, 41 + i));
  }
  const auto result = sim.RunMultiUser(queries, 2);

  ASSERT_EQ(result.response_by_query_ms.size(), queries.size());
  ASSERT_EQ(result.stream_of_query.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_GT(result.response_by_query_ms[i], 0) << "query " << i;
    EXPECT_EQ(result.stream_of_query[i], static_cast<int>(i % 2));
  }
  // Same multiset of times, different keying.
  auto by_query = result.response_by_query_ms;
  auto by_completion = result.response_ms;
  std::sort(by_query.begin(), by_query.end());
  std::sort(by_completion.begin(), by_completion.end());
  EXPECT_EQ(by_query, by_completion);
  // The attribution actually re-keys: the 1STORE scan at submission
  // index 0 owns the slowest time, which is NOT the first completion.
  EXPECT_EQ(result.response_by_query_ms[0], by_query.back());
  EXPECT_LT(result.response_ms[0], result.response_by_query_ms[0]);
}

TEST_F(SimulatorTest, SingleStreamAttributionIsCompletionOrder) {
  // One stream runs its list sequentially, so submission order IS
  // completion order and the two vectors coincide elementwise.
  Simulator sim(&schema_, &month_group_, SmallConfig());
  std::vector<StarQuery> queries;
  for (int i = 0; i < 4; ++i) {
    queries.push_back(apb1_queries::OneMonthOneGroup(i, 41 + i));
  }
  const auto result = sim.RunMultiUser(queries, 1);
  ASSERT_EQ(result.response_by_query_ms.size(), queries.size());
  EXPECT_EQ(result.response_by_query_ms, result.response_ms);
  for (int s : result.stream_of_query) EXPECT_EQ(s, 0);
}

TEST_F(SimulatorTest, UtilizationBounded) {
  Simulator sim(&schema_, &month_group_, SmallConfig());
  const auto result = sim.RunSingleUser({apb1_queries::OneMonth(3)});
  EXPECT_GT(result.avg_disk_utilization, 0);
  EXPECT_LE(result.max_disk_utilization, 1.0 + 1e-9);
  EXPECT_GT(result.avg_cpu_utilization, 0);
  EXPECT_LE(result.max_cpu_utilization, 1.0 + 1e-9);
}

TEST_F(SimulatorTest, BitmapReadsAppearForIoc2Queries) {
  Simulator sim(&schema_, &month_group_, SmallConfig());
  const auto no_bitmaps =
      sim.RunSingleUser({apb1_queries::OneMonthOneGroup(3, 41)});
  const auto with_bitmaps =
      sim.RunSingleUser({apb1_queries::OneCodeOneMonth(35, 5)});
  // Same single fragment, but the code query additionally reads 5 bitmap
  // fragments (one I/O each) and only the hit granules.
  EXPECT_EQ(no_bitmaps.subqueries, 1);
  EXPECT_EQ(with_bitmaps.subqueries, 1);
  EXPECT_GT(with_bitmaps.disk_ios, 0);
  // 1CODE1MONTH touches every granule (hits on every page) + 5 bitmaps.
  EXPECT_EQ(with_bitmaps.disk_ios, 100 + 5);
}

TEST_F(SimulatorTest, UnfragmentedBaselineRunsFullScanForStore) {
  // Without fragmentation (1 fragment), 1MONTH degenerates to a full scan
  // driven by bitmap filtering.
  const Fragmentation none(&schema_, {});
  SimConfig config = SmallConfig();
  Simulator sim(&schema_, &none, config);
  const auto q = apb1_queries::OneMonthOneGroup(3, 41);
  const auto result = sim.RunSingleUser({q});
  EXPECT_EQ(result.subqueries, 1);
  // The single "fragment" is the whole fact table: vastly more I/O than
  // the fragment-confined execution.
  Simulator frag_sim(&schema_, &month_group_, config);
  const auto frag_result = frag_sim.RunSingleUser({q});
  EXPECT_GT(result.disk_pages, 100 * frag_result.disk_pages);
}

}  // namespace
}  // namespace mdw
