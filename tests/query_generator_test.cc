#include <gtest/gtest.h>

#include <set>

#include "schema/apb1.h"
#include "workload/query_generator.h"

namespace mdw {
namespace {

TEST(QueryGeneratorTest, GeneratesNamedQueryTypes) {
  const auto schema = MakeApb1Schema();
  QueryGenerator gen(&schema, 1);
  EXPECT_EQ(gen.Generate(QueryType::k1Store).name(), "1STORE");
  EXPECT_EQ(gen.Generate(QueryType::k1Month).name(), "1MONTH");
  EXPECT_EQ(gen.Generate(QueryType::k1Code).name(), "1CODE");
  EXPECT_EQ(gen.Generate(QueryType::k1Month1Group).name(), "1MONTH1GROUP");
  EXPECT_EQ(gen.Generate(QueryType::k1Code1Quarter).name(), "1CODE1QUARTER");
}

TEST(QueryGeneratorTest, ValuesWithinCardinalities) {
  const auto schema = MakeApb1Schema();
  QueryGenerator gen(&schema, 2);
  for (int i = 0; i < 200; ++i) {
    const auto q = gen.Generate(QueryType::k1Store);
    ASSERT_EQ(q.predicates().size(), 1u);
    const auto& p = q.predicates()[0];
    EXPECT_EQ(p.dim, kApb1Customer);
    EXPECT_EQ(p.depth, 1);
    EXPECT_GE(p.values[0], 0);
    EXPECT_LT(p.values[0], 1'440);
  }
}

TEST(QueryGeneratorTest, DeterministicPerSeed) {
  const auto schema = MakeApb1Schema();
  QueryGenerator a(&schema, 3), b(&schema, 3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.Generate(QueryType::k1Code).predicates()[0].values[0],
              b.Generate(QueryType::k1Code).predicates()[0].values[0]);
  }
}

TEST(QueryGeneratorTest, ParametersVaryAcrossCalls) {
  const auto schema = MakeApb1Schema();
  QueryGenerator gen(&schema, 4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 50; ++i) {
    seen.insert(gen.Generate(QueryType::k1Code).predicates()[0].values[0]);
  }
  EXPECT_GT(seen.size(), 30u);
}

TEST(QueryGeneratorTest, GenerateMany) {
  const auto schema = MakeApb1Schema();
  QueryGenerator gen(&schema, 5);
  const auto queries = gen.GenerateMany(QueryType::k1Month, 7);
  EXPECT_EQ(queries.size(), 7u);
  for (const auto& q : queries) EXPECT_EQ(q.name(), "1MONTH");
}

TEST(QueryGeneratorTest, SkewConcentratesValues) {
  const auto schema = MakeApb1Schema();
  QueryGenerator uniform(&schema, 6, 0.0);
  QueryGenerator skewed(&schema, 6, 0.9);
  std::set<std::int64_t> u_seen, s_seen;
  for (int i = 0; i < 300; ++i) {
    u_seen.insert(uniform.Generate(QueryType::k1Store).predicates()[0]
                      .values[0]);
    s_seen.insert(skewed.Generate(QueryType::k1Store).predicates()[0]
                      .values[0]);
  }
  // A strong Zipf skew produces fewer distinct values than uniform.
  EXPECT_LT(s_seen.size(), u_seen.size());
}

TEST(QueryGeneratorTest, TwoDimensionalQueriesHaveTwoPredicates) {
  const auto schema = MakeApb1Schema();
  QueryGenerator gen(&schema, 7);
  EXPECT_EQ(gen.Generate(QueryType::k1Month1Group).predicates().size(), 2u);
  EXPECT_EQ(gen.Generate(QueryType::k1Code1Month).predicates().size(), 2u);
  EXPECT_EQ(gen.Generate(QueryType::k1Group1Store).predicates().size(), 2u);
}

TEST(QueryGeneratorTest, WorksOnTinySchema) {
  const auto tiny = MakeTinyApb1Schema();
  QueryGenerator gen(&tiny, 8);
  for (const auto type :
       {QueryType::k1Store, QueryType::k1Month, QueryType::k1Code,
        QueryType::k1Quarter, QueryType::k1Month1Group,
        QueryType::k1Code1Month, QueryType::k1Code1Quarter,
        QueryType::k1Group1Store}) {
    const auto q = gen.Generate(type);
    for (const auto& p : q.predicates()) {
      EXPECT_LT(p.values[0],
                tiny.dimension(p.dim).hierarchy().Cardinality(p.depth));
    }
  }
}

TEST(QueryGeneratorTest, ToStringCoversAllTypes) {
  EXPECT_STREQ(ToString(QueryType::k1Store), "1STORE");
  EXPECT_STREQ(ToString(QueryType::k1Quarter), "1QUARTER");
  EXPECT_STREQ(ToString(QueryType::k1Group1Store), "1GROUP1STORE");
}

}  // namespace
}  // namespace mdw
