// Chaos tests of the fault-tolerant paged storage path: a warehouse
// whose page reads fail, truncate, slow down or corrupt on a seeded
// deterministic schedule must keep the contract of ISSUE/ARCHITECTURE's
// failure model — every query either returns the bit-identical aggregate
// of a fault-free run or a typed error with no aggregate, one query's
// failure never poisons another, the process never dies, serial runs
// reproduce counter-for-counter, and the serving requeue budget turns
// transient failures back into answers without touching the virtual-time
// schedule.

#include <gtest/gtest.h>
#include <stdlib.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "core/mini_warehouse.h"
#include "core/warehouse.h"
#include "fragment/fragmentation.h"
#include "fragment/star_query.h"
#include "schema/apb1.h"
#include "sched/query_scheduler.h"
#include "storage/io_fault.h"
#include "storage/segment_store.h"

namespace mdw {
namespace {

std::vector<FragAttr> MonthGroup() {
  return {{kApb1Time, 2}, {kApb1Product, 3}};
}

// The reduced APB-1 sweep of the paged-storage tests: covered, residual,
// unsupported, multi-fragment and IN-list shapes.
std::vector<StarQuery> QuerySweep() {
  std::vector<StarQuery> queries;
  queries.push_back(apb1_queries::OneMonthOneGroup(3, 7));
  queries.push_back(apb1_queries::OneMonth(5));
  queries.push_back(apb1_queries::OneQuarter(2));
  queries.push_back(apb1_queries::OneCode(30));
  queries.push_back(apb1_queries::OneCodeOneMonth(30, 3));
  queries.push_back(apb1_queries::OneStore(17));
  queries.push_back(apb1_queries::OneGroupOneStore(7, 17));
  queries.push_back(StarQuery("IN_LIST", {{kApb1Product, 5, {1, 2, 50}},
                                          {kApb1Time, 2, {0, 6}}}));
  return queries;
}

class TempDir {
 public:
  TempDir() {
    const char* base = std::getenv("TEST_TMPDIR");
    std::string tmpl =
        std::string(base != nullptr ? base : "/tmp") + "/mdw_fault_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* got = ::mkdtemp(buf.data());
    EXPECT_NE(got, nullptr);
    path_ = got != nullptr ? got : tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Warehouse MakeFaulty(int shards, int workers, std::string storage_path,
                     storage::FaultPlan fault,
                     storage::StorageRetryPolicy retry = {},
                     bool prefetch = true) {
  WarehouseConfig cfg{.schema = MakeTinyApb1Schema()};
  cfg.fragmentation = MonthGroup();
  cfg.backend = BackendKind::kMaterialized;
  cfg.seed = 42;
  cfg.num_workers = workers;
  cfg.num_shards = shards;
  cfg.storage_path = std::move(storage_path);
  cfg.storage_prefetch = prefetch;
  cfg.storage_retry = retry;
  cfg.storage_fault = std::move(fault);
  return Warehouse(std::move(cfg));
}

/// The probabilistic plan of the chaos sweep: reads fail, truncate and
/// corrupt at `rate` each, on a fixed seed.
storage::FaultPlan ChaosPlan(double rate) {
  storage::FaultPlan plan;
  plan.seed = 0xC0FFEE;
  plan.eio_rate = rate;
  plan.short_read_rate = rate / 4;
  plan.corrupt_rate = rate;
  return plan;
}

/// Per-query record of a faulty run, for determinism comparisons.
struct RunRecord {
  bool ok = false;
  StatusCode code = StatusCode::kOk;
  std::optional<MiniWarehouse::AggregateResult> aggregate;
  std::int64_t io_errors = 0;
  std::int64_t io_retries = 0;
  std::int64_t checksum_failures = 0;

  friend bool operator==(const RunRecord&, const RunRecord&) = default;
};

RunRecord Record(const QueryOutcome& out) {
  return RunRecord{out.status.ok(),    out.status.code(),
                   out.aggregate,      out.io_errors,
                   out.io_retries,     out.checksum_failures};
}

// ---------------------------------------------------------------------------
// The chaos sweep (the PR's acceptance gate)

TEST(FaultInjectionTest, ChaosSweepNeverCrashesAndNeverLies) {
  // Fault-free ground truth: aggregates are shard/worker-invariant.
  TempDir clean_dir;
  const Warehouse clean = MakeFaulty(1, 1, clean_dir.path(), {});
  std::vector<QueryOutcome> truth;
  for (const StarQuery& q : QuerySweep()) truth.push_back(clean.Execute(q));

  for (const double rate : {0.0, 1e-3, 1e-1}) {
    for (const int shards : {1, 4}) {
      TempDir dir;
      for (const int workers : {1, 8}) {
        const Warehouse faulty =
            MakeFaulty(shards, workers, dir.path(), ChaosPlan(rate),
                       storage::StorageRetryPolicy{/*max_attempts=*/2});
        const std::vector<StarQuery> sweep = QuerySweep();
        for (std::size_t i = 0; i < sweep.size(); ++i) {
          const QueryOutcome out = faulty.Execute(sweep[i]);
          if (out.status.ok()) {
            // A query that survived its faults must be bit-identical to
            // the fault-free answer — retried/re-read pages may not
            // change a single bit.
            ASSERT_TRUE(out.aggregate.has_value()) << sweep[i].name();
            EXPECT_EQ(*out.aggregate, *truth[i].aggregate) << sweep[i].name();
            EXPECT_EQ(out.rows_scanned, truth[i].rows_scanned);
            EXPECT_EQ(out.rows_summarized, truth[i].rows_summarized);
          } else {
            // A query that did not survive fails typed and keeps its
            // untrustworthy sums to itself.
            EXPECT_FALSE(out.aggregate.has_value()) << sweep[i].name();
            EXPECT_TRUE(out.status.code() == StatusCode::kIoError ||
                        out.status.code() == StatusCode::kCorruption)
                << sweep[i].name() << ": " << out.status.ToString();
            EXPECT_GT(out.io_errors + out.checksum_failures, 0)
                << sweep[i].name();
          }
        }
        const storage::FaultInjector* injector =
            faulty.materialized()->paged_store()->fault_injector();
        if (rate == 0.0) {
          // An empty plan installs no injector at all: the fault-free
          // configuration pays zero overhead and stays byte-for-byte the
          // plain paged path (its parity is asserted above).
          EXPECT_EQ(injector, nullptr);
        } else {
          ASSERT_NE(injector, nullptr);
          EXPECT_GT(injector->stats().page_reads, 0);
        }
      }
      if (rate == 1e-1 && shards == 4) {
        // At the heavy rate the plan must actually have bitten — the
        // sweep above proved survival, not absence of faults. (The
        // injection schedule is seed-deterministic, so this is a fixed
        // fact of the test, not a flaky probability.)
        const Warehouse probe =
            MakeFaulty(4, 1, dir.path(), ChaosPlan(rate),
                       storage::StorageRetryPolicy{/*max_attempts=*/2});
        std::int64_t faults_seen = 0;
        for (const StarQuery& q : QuerySweep()) {
          const QueryOutcome out = probe.Execute(q);
          faults_seen += out.io_errors + out.checksum_failures;
        }
        EXPECT_GT(faults_seen, 0);
      }
    }
  }
}

TEST(FaultInjectionTest, SerialRunsAreCounterForCounterDeterministic) {
  TempDir dir;
  const auto run_once = [&] {
    const Warehouse faulty =
        MakeFaulty(4, /*workers=*/1, dir.path(), ChaosPlan(1e-1),
                   storage::StorageRetryPolicy{/*max_attempts=*/2});
    std::vector<RunRecord> records;
    for (const StarQuery& q : QuerySweep()) {
      records.push_back(Record(faulty.Execute(q)));
    }
    return records;
  };
  const std::vector<RunRecord> first = run_once();
  const std::vector<RunRecord> second = run_once();  // segments reused
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "query " << i;
  }
}

// ---------------------------------------------------------------------------
// Failure isolation

TEST(FaultInjectionTest, OneFailedQueryDoesNotPoisonTheNext) {
  TempDir dir;
  TempDir clean_dir;
  const Warehouse clean = MakeFaulty(1, 1, clean_dir.path(), {});
  // The very first page read of the store corrupts, once. No retries, no
  // prefetch: the damage lands on the first query's demand pin.
  storage::FaultPlan plan;
  plan.scripted.push_back({/*file_id=*/-1, /*page=*/-1,
                           storage::FaultKind::kCorruption, /*count=*/1});
  const Warehouse faulty = MakeFaulty(1, /*workers=*/1, dir.path(), plan,
                                      /*retry=*/{}, /*prefetch=*/false);
  const StarQuery q = apb1_queries::OneStore(17);

  const QueryOutcome hurt = faulty.Execute(q);
  ASSERT_FALSE(hurt.status.ok());
  EXPECT_EQ(hurt.status.code(), StatusCode::kCorruption);
  EXPECT_FALSE(hurt.aggregate.has_value());
  EXPECT_EQ(hurt.checksum_failures, 1);

  // The corrupted frame was never cached, the scripted fault is spent:
  // the exact same query now answers correctly — and so does an
  // unrelated one.
  const QueryOutcome healed = faulty.Execute(q);
  ASSERT_TRUE(healed.status.ok()) << healed.status.ToString();
  EXPECT_EQ(*healed.aggregate, *clean.Execute(q).aggregate);
  EXPECT_EQ(healed.checksum_failures, 0);
  const QueryOutcome other = faulty.Execute(apb1_queries::OneMonth(5));
  ASSERT_TRUE(other.status.ok());
  EXPECT_EQ(*other.aggregate, *clean.Execute(apb1_queries::OneMonth(5)).aggregate);
}

TEST(FaultInjectionTest, RetryPolicyAbsorbsTransientFaultsInsideTheQuery) {
  TempDir dir;
  TempDir clean_dir;
  const Warehouse clean = MakeFaulty(1, 1, clean_dir.path(), {});
  storage::FaultPlan plan;
  plan.scripted.push_back({/*file_id=*/-1, /*page=*/-1,
                           storage::FaultKind::kEio, /*count=*/1});
  const Warehouse faulty =
      MakeFaulty(1, /*workers=*/1, dir.path(), plan,
                 storage::StorageRetryPolicy{/*max_attempts=*/2},
                 /*prefetch=*/false);
  const StarQuery q = apb1_queries::OneStore(17);
  const QueryOutcome out = faulty.Execute(q);
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_EQ(*out.aggregate, *clean.Execute(q).aggregate);
  EXPECT_EQ(out.io_errors, 1);   // the attempt that failed
  EXPECT_EQ(out.io_retries, 1);  // the attempt that healed it
}

// ---------------------------------------------------------------------------
// Serving under faults

std::vector<Arrival> SweepArrivals() {
  std::vector<Arrival> arrivals;
  std::int64_t vt = 0;
  int stream = 0;
  for (StarQuery& q : QuerySweep()) {
    arrivals.push_back(Arrival{vt, stream, std::move(q)});
    vt += 10;
    stream = 1 - stream;
  }
  return arrivals;
}

TEST(FaultInjectionTest, ServeRequeuesTransientFailuresInPlace) {
  storage::FaultPlan one_eio;
  one_eio.scripted.push_back({/*file_id=*/-1, /*page=*/-1,
                              storage::FaultKind::kEio, /*count=*/1});
  ServingConfig scfg;
  scfg.num_workers = 1;

  // Without a requeue budget the transient fault costs one query.
  {
    TempDir dir;
    const Warehouse wh = MakeFaulty(1, /*workers=*/1, dir.path(), one_eio,
                                    /*retry=*/{}, /*prefetch=*/false);
    scfg.max_requeues = 0;
    const BatchOutcome batch = wh.Serve(SweepArrivals(), scfg);
    ASSERT_TRUE(batch.serving.has_value());
    EXPECT_EQ(batch.serving->total.failed, 1);
    EXPECT_EQ(batch.serving->total.requeued, 0);
    int failed = 0;
    for (const QueryOutcome& out : batch.queries) {
      if (!out.status.ok()) {
        ++failed;
        EXPECT_FALSE(out.aggregate.has_value());
      }
    }
    EXPECT_EQ(failed, 1);
  }

  // With a budget of one, the re-execution inside the dispatch slot
  // clears it: every query answers; the schedule records the requeue.
  {
    TempDir dir;
    const Warehouse wh = MakeFaulty(1, /*workers=*/1, dir.path(), one_eio,
                                    /*retry=*/{}, /*prefetch=*/false);
    scfg.max_requeues = 1;
    const BatchOutcome batch = wh.Serve(SweepArrivals(), scfg);
    ASSERT_TRUE(batch.serving.has_value());
    EXPECT_EQ(batch.serving->total.failed, 0);
    EXPECT_EQ(batch.serving->total.requeued, 1);
    ASSERT_TRUE(batch.total_aggregate.has_value());
    int requeued = 0;
    for (const QueryOutcome& out : batch.queries) {
      EXPECT_TRUE(out.status.ok()) << out.status.ToString();
      ASSERT_TRUE(out.aggregate.has_value());
      if (out.requeues > 0) {
        ++requeued;
        EXPECT_EQ(out.requeues, 1);
        EXPECT_EQ(out.io_errors, 1);  // the failed first execution's read
      }
    }
    EXPECT_EQ(requeued, 1);
    // Per-stream accounting sums to the totals.
    std::int64_t stream_requeues = 0;
    for (const auto& s : batch.serving->streams) stream_requeues += s.requeued;
    EXPECT_EQ(stream_requeues, 1);
  }
}

TEST(FaultInjectionTest, InjectorStatsAccountForEveryDecision) {
  TempDir dir;
  storage::FaultPlan plan = ChaosPlan(1e-1);
  plan.latency_rate = 0.05;  // exercises the no-error latency kind too
  plan.latency_us = 1;
  const Warehouse faulty =
      MakeFaulty(1, /*workers=*/1, dir.path(), plan,
                 storage::StorageRetryPolicy{/*max_attempts=*/3});
  for (const StarQuery& q : QuerySweep()) (void)faulty.Execute(q);
  const storage::FaultInjector* injector =
      faulty.materialized()->paged_store()->fault_injector();
  ASSERT_NE(injector, nullptr);
  const storage::FaultStats stats = injector->stats();
  EXPECT_GT(stats.page_reads, 0);
  // Every injected failure the pool observed is one the injector issued.
  // (The pool can see FEWER corruptions than issued when a prefetch run
  // fails wholesale first, never fewer EIO-class faults than page_reads
  // bounds allow — keep the invariant directional.)
  EXPECT_LE(stats.injected_eio + stats.injected_short_reads +
                stats.injected_corruptions + stats.injected_latency,
            stats.page_reads);
}

}  // namespace
}  // namespace mdw
