#include <gtest/gtest.h>

#include "fragment/query_planner.h"
#include "schema/apb1.h"
#include "workload/query_parser.h"

namespace mdw {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : schema_(MakeApb1Schema()) {}

  StarQuery MustParse(const std::string& sql) {
    std::string error;
    auto query = ParseStarQuery(schema_, sql, &error);
    EXPECT_TRUE(query.has_value()) << sql << " -> " << error;
    return query.value_or(StarQuery("invalid", {}));
  }

  std::string MustFail(const std::string& sql) {
    std::string error;
    auto query = ParseStarQuery(schema_, sql, &error);
    EXPECT_FALSE(query.has_value()) << sql;
    return error;
  }

  StarSchema schema_;
};

TEST_F(ParserTest, PaperExampleQuery) {
  // The paper's 1MONTH1GROUP, Sec. 3.1 (values made explicit).
  const auto q = MustParse(
      "SELECT SUM(UnitsSold), SUM(DollarSales) FROM sales "
      "WHERE time.month = 3 AND product.group = 41");
  ASSERT_EQ(q.predicates().size(), 2u);
  EXPECT_EQ(q.predicates()[0].dim, kApb1Time);
  EXPECT_EQ(q.predicates()[0].depth, 2);
  EXPECT_EQ(q.predicates()[0].values, std::vector<std::int64_t>{3});
  EXPECT_EQ(q.predicates()[1].dim, kApb1Product);
  EXPECT_EQ(q.predicates()[1].depth, 3);
}

TEST_F(ParserTest, ParsedQueryPlansLikeHandBuilt) {
  const Fragmentation f(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}});
  const QueryPlanner planner(&schema_, &f);
  const auto parsed = MustParse(
      "SELECT SUM(UnitsSold) FROM sales "
      "WHERE time.month = 3 AND product.group = 41");
  const auto by_hand = apb1_queries::OneMonthOneGroup(3, 41);
  const auto plan_parsed = planner.Plan(parsed);
  const auto plan_hand = planner.Plan(by_hand);
  EXPECT_EQ(plan_parsed.FragmentCount(), plan_hand.FragmentCount());
  EXPECT_EQ(plan_parsed.io_class(), plan_hand.io_class());
  EXPECT_EQ(plan_parsed.MaterializeFragments(),
            plan_hand.MaterializeFragments());
}

TEST_F(ParserTest, InList) {
  const auto q = MustParse(
      "SELECT SUM(Cost) FROM sales WHERE product.code IN (1, 2, 50)");
  ASSERT_EQ(q.predicates().size(), 1u);
  EXPECT_EQ(q.predicates()[0].values,
            (std::vector<std::int64_t>{1, 2, 50}));
}

TEST_F(ParserTest, CaseInsensitiveKeywords) {
  const auto q = MustParse(
      "select sum(UnitsSold) from sales where customer.store = 17");
  ASSERT_EQ(q.predicates().size(), 1u);
  EXPECT_EQ(q.predicates()[0].dim, kApb1Customer);
}

TEST_F(ParserTest, NoWhereClauseMeansFullAggregate) {
  const auto q = MustParse("SELECT SUM(UnitsSold) FROM sales");
  EXPECT_TRUE(q.predicates().empty());
}

TEST_F(ParserTest, SelectStarAndMultipleAggregates) {
  const auto star = MustParse("SELECT * FROM sales WHERE channel.channel = 3");
  EXPECT_EQ(star.aggregates(), AggregateSpec::Default());
  const auto q = MustParse("SELECT COUNT(*), AVG(Cost), SUM(DollarSales) "
                           "FROM sales");
  ASSERT_EQ(q.aggregates().items.size(), 3u);
  EXPECT_EQ(q.aggregates().items[0].fn, AggFn::kCount);
  EXPECT_EQ(q.aggregates().items[1].fn, AggFn::kAvg);
  // Unknown measure names (the dialect's historical aliases) read
  // UnitsSold; DollarSales is the one name selecting the other measure.
  EXPECT_EQ(q.aggregates().items[1].measure, MeasureId::kUnitsSold);
  EXPECT_EQ(q.aggregates().items[2].fn, AggFn::kSum);
  EXPECT_EQ(q.aggregates().items[2].measure, MeasureId::kDollarSales);
}

TEST_F(ParserTest, RejectsMinMax) {
  const auto error = MustFail("SELECT MIN(Cost), MAX(Cost) FROM sales");
  EXPECT_NE(error.find("MIN/MAX"), std::string::npos);
}

TEST_F(ParserTest, GroupByClause) {
  const auto q = MustParse(
      "SELECT SUM(UnitsSold) FROM sales "
      "WHERE time.quarter = 2 GROUP BY product.group");
  ASSERT_TRUE(q.grouped());
  EXPECT_EQ(q.group_by()->dim, kApb1Product);
  EXPECT_EQ(q.group_by()->depth, 3);
  EXPECT_FALSE(q.order_by().has_value());
}

TEST_F(ParserTest, OrderByPositionWithLimit) {
  const auto q = MustParse(
      "SELECT SUM(UnitsSold), SUM(DollarSales) FROM sales "
      "GROUP BY time.month ORDER BY 2 DESC LIMIT 5");
  ASSERT_TRUE(q.order_by().has_value());
  EXPECT_EQ(q.order_by()->item, 1);
  EXPECT_TRUE(q.order_by()->descending);
  EXPECT_EQ(q.order_by()->limit, 5);
}

TEST_F(ParserTest, OrderByAggregateExpressionDefaultsToAscending) {
  const auto q = MustParse(
      "SELECT COUNT(*), SUM(DollarSales) FROM sales "
      "GROUP BY customer.store ORDER BY SUM(DollarSales)");
  ASSERT_TRUE(q.order_by().has_value());
  EXPECT_EQ(q.order_by()->item, 1);
  EXPECT_FALSE(q.order_by()->descending);
  EXPECT_EQ(q.order_by()->limit, 0);
}

TEST_F(ParserTest, RejectsBadGroupByAndOrderBy) {
  EXPECT_NE(MustFail("SELECT SUM(x) FROM sales GROUP BY supplier.name")
                .find("unknown dimension"),
            std::string::npos);
  EXPECT_NE(MustFail("SELECT SUM(x) FROM sales GROUP BY time.week")
                .find("unknown level"),
            std::string::npos);
  EXPECT_NE(MustFail("SELECT SUM(x) FROM sales ORDER BY 2")
                .find("outside the SELECT list"),
            std::string::npos);
  EXPECT_NE(MustFail("SELECT SUM(x) FROM sales ORDER BY AVG(x)")
                .find("not in the SELECT list"),
            std::string::npos);
  EXPECT_NE(MustFail("SELECT SUM(x) FROM sales ORDER BY 1 LIMIT 0")
                .find("LIMIT"),
            std::string::npos);
  MustFail("SELECT SUM(x) FROM sales GROUP BY");
  MustFail("SELECT SUM(x) FROM sales ORDER BY");
  MustFail("SELECT SUM(x) FROM sales LIMIT 3");  // LIMIT needs ORDER BY
}

TEST_F(ParserTest, ParseSqlReturnsTypedStatus) {
  const auto bad = ParseSql(schema_, "SELECT SUM(x) FROM nowhere");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("unknown fact table"),
            std::string::npos);
  const auto good = ParseSql(
      schema_, "SELECT SUM(UnitsSold) FROM sales GROUP BY time.year");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->grouped());
}

TEST_F(ParserTest, RejectsUnknownDimension) {
  const auto error =
      MustFail("SELECT SUM(x) FROM sales WHERE supplier.name = 1");
  EXPECT_NE(error.find("unknown dimension"), std::string::npos);
}

TEST_F(ParserTest, RejectsUnknownLevel) {
  const auto error =
      MustFail("SELECT SUM(x) FROM sales WHERE time.week = 1");
  EXPECT_NE(error.find("unknown level"), std::string::npos);
}

TEST_F(ParserTest, RejectsOutOfRangeValue) {
  const auto error =
      MustFail("SELECT SUM(x) FROM sales WHERE time.month = 24");
  EXPECT_NE(error.find("expected a value in [0, 24)"), std::string::npos);
}

TEST_F(ParserTest, RejectsWrongFactTable) {
  const auto error = MustFail("SELECT SUM(x) FROM orders");
  EXPECT_NE(error.find("unknown fact table"), std::string::npos);
}

TEST_F(ParserTest, RejectsDuplicateDimension) {
  const auto error = MustFail(
      "SELECT SUM(x) FROM sales WHERE time.month = 1 AND time.year = 0");
  EXPECT_NE(error.find("duplicate predicate"), std::string::npos);
}

TEST_F(ParserTest, RejectsTrailingGarbage) {
  const auto error =
      MustFail("SELECT SUM(x) FROM sales WHERE time.month = 1 EXTRA");
  EXPECT_NE(error.find("trailing"), std::string::npos);
}

TEST_F(ParserTest, RejectsMalformedSyntax) {
  MustFail("");
  MustFail("FROM sales");
  MustFail("SELECT FROM sales");
  MustFail("SELECT SUM(UnitsSold FROM sales");
  MustFail("SELECT SUM(x) FROM sales WHERE");
  MustFail("SELECT SUM(x) FROM sales WHERE time month = 1");
  MustFail("SELECT SUM(x) FROM sales WHERE time.month 1");
  MustFail("SELECT SUM(x) FROM sales WHERE time.month IN 1");
  MustFail("SELECT SUM(x) FROM sales WHERE time.month IN (1, )");
}

TEST_F(ParserTest, WorksOnTinySchema) {
  const auto tiny = MakeTinyApb1Schema();
  std::string error;
  const auto q = ParseStarQuery(
      tiny, "SELECT SUM(UnitsSold) FROM tiny_sales WHERE product.code = 30",
      &error);
  ASSERT_TRUE(q.has_value()) << error;
  EXPECT_EQ(q->predicates()[0].values[0], 30);
}

}  // namespace
}  // namespace mdw
