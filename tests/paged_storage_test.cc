// File-backed store tests: bit-identical parity of the paged segment
// store against the in-RAM store across shard and worker counts (facade
// execution, full scans, bitmap and membership-fallback paths), segment
// reuse and rejection of stale/corrupt/truncated files, the on-disk
// format invariants, query I/O counters against the buffer pool's own
// accounting (and their per-shard split), service through a pool far
// smaller than the working set, and pages_read against PagedLayout's
// page-count predictions on residual vs covered queries.
//
// Every test writes under a mkdtemp directory removed by an RAII guard,
// so failures don't leak segment files into the tree.

#include <gtest/gtest.h>
#include <stdlib.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/mini_warehouse.h"
#include "core/paged_layout.h"
#include "core/warehouse.h"
#include "fragment/fragmentation.h"
#include "fragment/star_query.h"
#include "schema/apb1.h"
#include "storage/segment_store.h"

namespace mdw {
namespace {

std::vector<FragAttr> MonthGroup() {
  return {{kApb1Time, 2}, {kApb1Product, 3}};
}

// The reduced APB-1 sweep of the sharded-execution tests: fully covered,
// residual, unsupported, multi-fragment and IN-list shapes.
std::vector<StarQuery> QuerySweep() {
  std::vector<StarQuery> queries;
  queries.push_back(apb1_queries::OneMonthOneGroup(3, 7));
  queries.push_back(apb1_queries::OneMonth(5));
  queries.push_back(apb1_queries::OneQuarter(2));
  queries.push_back(apb1_queries::OneCode(30));
  queries.push_back(apb1_queries::OneCodeOneMonth(30, 3));
  queries.push_back(apb1_queries::OneStore(17));
  queries.push_back(apb1_queries::OneGroupOneStore(7, 17));
  queries.push_back(StarQuery("IN_LIST", {{kApb1Product, 5, {1, 2, 50}},
                                          {kApb1Time, 2, {0, 6}}}));
  return queries;
}

/// mkdtemp directory removed (recursively) when the guard dies — on
/// test failure too, since gtest EXPECT/ASSERT unwind through scopes.
class TempDir {
 public:
  TempDir() {
    const char* base = std::getenv("TEST_TMPDIR");
    std::string tmpl =
        std::string(base != nullptr ? base : "/tmp") + "/mdw_paged_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* got = ::mkdtemp(buf.data());
    EXPECT_NE(got, nullptr);
    path_ = got != nullptr ? got : tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

storage::StoreOptions Opts(const std::string& path,
                           std::int64_t pool_pages = 4096,
                           bool prefetch = true) {
  storage::StoreOptions o;
  o.path = path;
  o.pool_pages = pool_pages;
  o.prefetch = prefetch;
  return o;
}

MiniWarehouse MakeRam(int num_shards, std::uint64_t seed = 42,
                      bool summaries = true) {
  return MiniWarehouse(MakeTinyApb1Schema(), seed, MonthGroup(), summaries,
                       num_shards);
}

MiniWarehouse MakePaged(int num_shards, const storage::StoreOptions& opts,
                        std::uint64_t seed = 42, bool summaries = true) {
  return MiniWarehouse(MakeTinyApb1Schema(), seed, MonthGroup(), summaries,
                       num_shards, {}, opts);
}

Warehouse MakeFacade(int shards, int workers, std::string storage_path = {},
                     std::int64_t pool_pages = 4096, bool summaries = true,
                     bool prefetch = true) {
  WarehouseConfig cfg{.schema = MakeTinyApb1Schema()};
  cfg.fragmentation = MonthGroup();
  cfg.backend = BackendKind::kMaterialized;
  cfg.seed = 42;
  cfg.num_workers = workers;
  cfg.num_shards = shards;
  cfg.enable_fragment_summaries = summaries;
  cfg.storage_path = std::move(storage_path);
  cfg.storage_pool_pages = pool_pages;
  cfg.storage_prefetch = prefetch;
  return Warehouse(std::move(cfg));
}

/// The logical half of two outcomes must match exactly; the I/O fields
/// are checked separately (they are zero in RAM by design).
void ExpectLogicalParity(const QueryOutcome& ram, const QueryOutcome& paged) {
  ASSERT_TRUE(ram.aggregate.has_value());
  ASSERT_TRUE(paged.aggregate.has_value());
  EXPECT_EQ(*ram.aggregate, *paged.aggregate);
  EXPECT_EQ(ram.rows_scanned, paged.rows_scanned);
  EXPECT_EQ(ram.fragments_processed, paged.fragments_processed);
  EXPECT_EQ(ram.fragments_summarized, paged.fragments_summarized);
  EXPECT_EQ(ram.rows_summarized, paged.rows_summarized);
  EXPECT_EQ(ram.query_class, paged.query_class);
  EXPECT_EQ(ram.io_class, paged.io_class);
  EXPECT_EQ(ram.shard_skew, paged.shard_skew);
  ASSERT_EQ(ram.shards.size(), paged.shards.size());
  for (std::size_t s = 0; s < ram.shards.size(); ++s) {
    EXPECT_EQ(ram.shards[s].rows_scanned, paged.shards[s].rows_scanned);
    EXPECT_EQ(ram.shards[s].rows_summarized, paged.shards[s].rows_summarized);
    EXPECT_EQ(ram.shards[s].fragments, paged.shards[s].fragments);
    EXPECT_EQ(ram.shards[s].fragments_summarized,
              paged.shards[s].fragments_summarized);
    EXPECT_EQ(ram.shards[s].pages_read, 0);
    EXPECT_EQ(ram.shards[s].bytes_read, 0);
  }
}

// ---------------------------------------------------------------------------
// Parity with the in-RAM store

TEST(PagedStorageTest, FacadeParityAcrossShardsAndWorkers) {
  for (const int shards : {1, 4}) {
    TempDir dir;
    for (const int workers : {1, 8}) {
      const Warehouse ram = MakeFacade(shards, workers);
      const Warehouse paged = MakeFacade(shards, workers, dir.path());
      ASSERT_TRUE(paged.materialized()->file_backed());
      for (const StarQuery& q : QuerySweep()) {
        const QueryOutcome a = ram.Execute(q);
        const QueryOutcome b = paged.Execute(q);
        ExpectLogicalParity(a, b);
        EXPECT_EQ(a.pages_read, 0);
        EXPECT_EQ(a.bytes_read, 0);
        if (a.aggregate->rows > 0) {
          // The paged store had to touch the pool to answer.
          EXPECT_GT(b.pages_read + b.buffer_hits, 0) << q.name();
        }
        EXPECT_EQ(b.bytes_read,
                  b.pages_read * paged.materialized()->paged_store()
                                     ->page_size());
      }
    }
  }
}

TEST(PagedStorageTest, FullScanBitmapAndFallbackParity) {
  TempDir dir;
  const MiniWarehouse ram = MakeRam(2);
  const MiniWarehouse paged = MakePaged(2, Opts(dir.path()));
  ASSERT_TRUE(paged.file_backed());
  // A fragmentation that does NOT match the clustered layout forces the
  // per-row membership fallback (ExecuteUnclustered) on both stores.
  const Fragmentation other_ram(&ram.schema(), {{kApb1Time, 1}});
  const Fragmentation other_paged(&paged.schema(), {{kApb1Time, 1}});
  for (const StarQuery& q : QuerySweep()) {
    EXPECT_EQ(ram.ExecuteFullScan(q), paged.ExecuteFullScan(q)) << q.name();
    EXPECT_EQ(ram.ExecuteWithBitmaps(q), paged.ExecuteWithBitmaps(q))
        << q.name();
    const auto a = ram.ExecuteWithFragmentation(q, other_ram);
    const auto b = paged.ExecuteWithFragmentation(q, other_paged);
    EXPECT_EQ(a.result, b.result) << q.name();
    EXPECT_EQ(a.rows_scanned, b.rows_scanned) << q.name();
  }
}

TEST(PagedStorageTest, FactsAccessorAbortsWhenFileBacked) {
  TempDir dir;
  const MiniWarehouse paged = MakePaged(1, Opts(dir.path()));
  EXPECT_DEATH(paged.facts(), "file-backed");
}

// ---------------------------------------------------------------------------
// Segment reuse and rejection

TEST(PagedStorageTest, SegmentsAreReusedByteIdenticallyAcrossReopens) {
  TempDir dir;
  MiniWarehouse::AggregateResult first_result;
  {
    const MiniWarehouse first = MakePaged(4, Opts(dir.path()));
    EXPECT_FALSE(first.paged_store()->reused());  // nothing on disk yet
    EXPECT_TRUE(first.paged_store()->validation_error().empty());
    first_result = first.ExecuteFullScan(apb1_queries::OneMonth(5));
  }
  const MiniWarehouse second = MakePaged(4, Opts(dir.path()));
  EXPECT_TRUE(second.paged_store()->reused());
  EXPECT_TRUE(second.paged_store()->validation_error().empty());
  EXPECT_EQ(second.ExecuteFullScan(apb1_queries::OneMonth(5)), first_result);
}

TEST(PagedStorageTest, StaleSegmentsOfAnotherDatasetAreRewritten) {
  TempDir dir;
  { const MiniWarehouse seed42 = MakePaged(2, Opts(dir.path())); }
  // Same directory, different population seed: the schema hash differs,
  // so every segment fails validation and is rewritten.
  const MiniWarehouse seed43 = MakePaged(2, Opts(dir.path()), /*seed=*/43);
  EXPECT_FALSE(seed43.paged_store()->reused());
  EXPECT_FALSE(seed43.paged_store()->validation_error().empty());
  const MiniWarehouse ram43 = MakeRam(2, /*seed=*/43);
  const Fragmentation frag(&ram43.schema(), MonthGroup());
  const Fragmentation frag_paged(&seed43.schema(), MonthGroup());
  for (const StarQuery& q : QuerySweep()) {
    EXPECT_EQ(ram43.ExecuteWithFragmentation(q, frag).result,
              seed43.ExecuteWithFragmentation(q, frag_paged).result)
        << q.name();
  }
}

TEST(PagedStorageTest, CorruptHeaderIsDetectedAndRewritten) {
  TempDir dir;
  std::string segment;
  {
    const MiniWarehouse first = MakePaged(2, Opts(dir.path()));
    segment = first.paged_store()->SegmentPath(0);
  }
  {
    // Flip one byte inside the schema-hash field of shard 0's header.
    std::fstream f(segment, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekg(16);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(16);
    f.write(&byte, 1);
  }
  const MiniWarehouse second = MakePaged(2, Opts(dir.path()));
  EXPECT_FALSE(second.paged_store()->reused());
  EXPECT_FALSE(second.paged_store()->validation_error().empty());
  const MiniWarehouse ram = MakeRam(2);
  EXPECT_EQ(ram.ExecuteFullScan(apb1_queries::OneQuarter(2)),
            second.ExecuteFullScan(apb1_queries::OneQuarter(2)));
}

TEST(PagedStorageTest, TruncatedSegmentIsDetectedAndRewritten) {
  TempDir dir;
  std::string segment;
  std::int64_t page_size = 0;
  {
    const MiniWarehouse first = MakePaged(2, Opts(dir.path()));
    segment = first.paged_store()->SegmentPath(1);
    page_size = first.paged_store()->page_size();
  }
  const auto full_size = std::filesystem::file_size(segment);
  std::filesystem::resize_file(
      segment, full_size - static_cast<std::uintmax_t>(page_size));
  const MiniWarehouse second = MakePaged(2, Opts(dir.path()));
  EXPECT_FALSE(second.paged_store()->reused());
  EXPECT_FALSE(second.paged_store()->validation_error().empty());
  EXPECT_EQ(std::filesystem::file_size(segment), full_size);  // rewritten
  const MiniWarehouse ram = MakeRam(2);
  EXPECT_EQ(ram.ExecuteWithBitmaps(apb1_queries::OneStore(17)),
            second.ExecuteWithBitmaps(apb1_queries::OneStore(17)));
}

// ---------------------------------------------------------------------------
// On-disk format

TEST(SegmentFormatTest, HeadersAndGeometryMatchTheSpec) {
  TempDir dir;
  const MiniWarehouse wh = MakePaged(2, Opts(dir.path()));
  const storage::SegmentStore& store = *wh.paged_store();
  EXPECT_EQ(store.num_shards(), 2);
  EXPECT_EQ(store.row_count(), wh.row_count());
  EXPECT_EQ(store.page_size(), wh.schema().physical().page_size_bytes);
  EXPECT_EQ(store.tuples_per_page(), wh.schema().physical().TuplesPerPage());
  EXPECT_TRUE(store.has_summaries());
  // dims + units + dollars + the two prefix-sum columns
  EXPECT_EQ(store.num_columns(), wh.schema().num_dimensions() + 4);
  for (int s = 0; s < store.num_shards(); ++s) {
    const std::string path = store.SegmentPath(s);
    ASSERT_TRUE(std::filesystem::exists(path));
    const auto size =
        static_cast<std::int64_t>(std::filesystem::file_size(path));
    EXPECT_EQ(size % store.page_size(), 0) << "page-aligned";
    EXPECT_EQ(size, store.SegmentPages(s) * store.page_size());

    std::ifstream in(path, std::ios::binary);
    char magic[8] = {};
    in.read(magic, 8);
    EXPECT_EQ(std::string(magic, 8), std::string("MDWSEG1\0", 8));
    std::uint32_t version = 0;
    std::uint32_t endian_tag = 0;
    in.read(reinterpret_cast<char*>(&version), 4);
    in.read(reinterpret_cast<char*>(&endian_tag), 4);
    EXPECT_EQ(version, 2u);
    EXPECT_EQ(endian_tag, 0x01020304u);

    // v2 layout: [header | checksum block | data pages]. The checksum
    // block holds one CRC-32C (4 bytes) per data page, page-padded.
    const std::int64_t checksum_pages = store.ChecksumPages(s);
    const std::int64_t first_data = store.FirstDataPage(s);
    const std::int64_t data_pages = store.SegmentPages(s) - first_data;
    EXPECT_GT(checksum_pages, 0);
    EXPECT_GT(first_data, checksum_pages);  // header pages precede
    EXPECT_EQ(checksum_pages,
              (data_pages * 4 + store.page_size() - 1) / store.page_size());
  }
}

TEST(SegmentFormatTest, V1SegmentsAreDetectedAsStaleAndRewritten) {
  TempDir dir;
  std::string segment;
  {
    const MiniWarehouse first = MakePaged(2, Opts(dir.path()));
    segment = first.paged_store()->SegmentPath(0);
  }
  {
    // Rewind the version field (offset 8) to 1: the file now claims the
    // old checksum-less format. The probe must say so by name instead of
    // complaining about the size, and rewrite the segment.
    std::fstream f(segment, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    const std::uint32_t old_version = 1;
    f.seekp(8);
    f.write(reinterpret_cast<const char*>(&old_version), 4);
  }
  const MiniWarehouse second = MakePaged(2, Opts(dir.path()));
  EXPECT_FALSE(second.paged_store()->reused());
  EXPECT_NE(second.paged_store()->validation_error().find("stale"),
            std::string::npos)
      << second.paged_store()->validation_error();
  const MiniWarehouse ram = MakeRam(2);
  EXPECT_EQ(ram.ExecuteFullScan(apb1_queries::OneMonth(5)),
            second.ExecuteFullScan(apb1_queries::OneMonth(5)));
}

TEST(SegmentFormatTest, OnDiskDataCorruptionIsCaughtByPageChecksums) {
  // Damage every data page of one shard at rest. The header still
  // validates, so the store reuses the segment — but the first query that
  // pins a damaged page gets a typed kCorruption outcome instead of a
  // silently wrong aggregate, and the process stays alive.
  TempDir dir;
  std::string segment;
  std::int64_t first_data = 0, total = 0, page_size = 0;
  {
    const MiniWarehouse first = MakePaged(1, Opts(dir.path()));
    segment = first.paged_store()->SegmentPath(0);
    first_data = first.paged_store()->FirstDataPage(0);
    total = first.paged_store()->SegmentPages(0);
    page_size = first.paged_store()->page_size();
  }
  {
    std::fstream f(segment, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    for (std::int64_t p = first_data; p < total; ++p) {
      f.seekg(p * page_size);
      char byte = 0;
      f.read(&byte, 1);
      byte = static_cast<char>(byte ^ 0x5a);
      f.seekp(p * page_size);
      f.write(&byte, 1);
    }
  }
  const Warehouse damaged = MakeFacade(1, /*workers=*/1, dir.path());
  ASSERT_TRUE(damaged.materialized()->paged_store()->reused());
  for (const StarQuery& q : QuerySweep()) {
    const QueryOutcome outcome = damaged.Execute(q);
    ASSERT_FALSE(outcome.status.ok()) << q.name();
    EXPECT_EQ(outcome.status.code(), StatusCode::kCorruption) << q.name();
    EXPECT_FALSE(outcome.aggregate.has_value()) << q.name();
    EXPECT_GT(outcome.checksum_failures, 0) << q.name();
    EXPECT_EQ(outcome.io_errors, 0) << q.name();
  }
}

// ---------------------------------------------------------------------------
// Buffer-pool behaviour under execution

TEST(PagedStorageTest, ServesTheDatasetThroughAPoolSmallerThanTheWorkingSet) {
  TempDir dir;
  const Warehouse ram = MakeFacade(4, /*workers=*/1);
  const Warehouse paged =
      MakeFacade(4, /*workers=*/1, dir.path(), /*pool_pages=*/16);
  for (const StarQuery& q : QuerySweep()) {
    ExpectLogicalParity(ram.Execute(q), paged.Execute(q));
  }
  // A 16-page pool cannot hold the measure columns; pages churned.
  EXPECT_GT(paged.materialized()->paged_store()->pool().stats().evictions, 0);
}

TEST(PagedStorageTest, QueryIoCountersMatchThePoolAndSumOverShards) {
  TempDir dir;
  const Warehouse paged = MakeFacade(4, /*workers=*/1, dir.path());
  const storage::BufferPool& pool =
      paged.materialized()->paged_store()->pool();
  for (const StarQuery& q : QuerySweep()) {
    const storage::PoolStats before = pool.stats();
    const QueryOutcome outcome = paged.Execute(q);
    const storage::PoolStats after = pool.stats();
    // The query's own attribution is exactly the pool's counter delta
    // (serial execution: no other reader touches the pool).
    EXPECT_EQ(outcome.pages_read, after.pages_read - before.pages_read)
        << q.name();
    EXPECT_EQ(outcome.buffer_hits, after.hits - before.hits) << q.name();
    EXPECT_EQ(outcome.bytes_read, after.bytes_read - before.bytes_read)
        << q.name();
    // And the per-shard split sums back to the totals.
    ASSERT_EQ(outcome.shards.size(), 4u);
    std::int64_t pages = 0, hits = 0, bytes = 0;
    for (const auto& shard : outcome.shards) {
      pages += shard.pages_read;
      hits += shard.buffer_hits;
      bytes += shard.bytes_read;
    }
    EXPECT_EQ(pages, outcome.pages_read) << q.name();
    EXPECT_EQ(hits, outcome.buffer_hits) << q.name();
    EXPECT_EQ(bytes, outcome.bytes_read) << q.name();
  }
}

TEST(PagedStorageTest, WarmPoolServesRepeatQueriesWithoutFaults) {
  TempDir dir;
  const Warehouse paged = MakeFacade(1, /*workers=*/1, dir.path(),
                                     /*pool_pages=*/4096, /*summaries=*/true,
                                     /*prefetch=*/false);
  for (const StarQuery& q : QuerySweep()) {
    const QueryOutcome cold = paged.Execute(q);
    const QueryOutcome warm = paged.Execute(q);
    EXPECT_EQ(*cold.aggregate, *warm.aggregate);
    EXPECT_EQ(warm.pages_read, 0) << q.name();
    // Serially and without prefetch, the warm run repeats the exact pin
    // sequence of the cold run, now all served from cache.
    EXPECT_EQ(warm.buffer_hits, cold.pages_read + cold.buffer_hits) << q.name();
  }
}

// ---------------------------------------------------------------------------
// pages_read vs the logical page model

TEST(PagedStorageTest, ResidualPagesReadMatchPagedLayoutPrediction) {
  // Summaries off: every fragment is residual, so a serial cold-pool
  // execution faults exactly the pages holding hit rows, once per
  // measure column. PagedLayout counts those pages on an in-RAM twin
  // (same clustered physical order; the file-backed facts() is gone by
  // design), so prediction and measurement must agree exactly.
  TempDir dir;
  const MiniWarehouse twin = MakeRam(1, /*seed=*/42, /*summaries=*/false);
  const PagedLayout layout(&twin, LayoutOrder::kGeneration);
  for (const StarQuery& q : QuerySweep()) {
    const Warehouse cold = MakeFacade(1, /*workers=*/1, dir.path(),
                                      /*pool_pages=*/4096,
                                      /*summaries=*/false);
    const QueryOutcome outcome = cold.Execute(q);
    const PagedLayout::ScanStats stats = layout.Analyze(q);
    EXPECT_EQ(outcome.pages_read, 2 * stats.pages_with_hits) << q.name();
    EXPECT_EQ(outcome.rows_summarized, 0) << q.name();
  }
}

TEST(PagedStorageTest, CoveredQueriesAnswerFromFewSummaryPages) {
  // Summaries on: hierarchy-aligned queries never scan rows; each
  // covered run folds two prefix-sum boundaries per measure column, so
  // it costs at most 4 page faults per summarized fragment — instead of
  // the pages_with_hits data pages a residual scan would fault.
  TempDir dir;
  for (const StarQuery& q : {apb1_queries::OneMonthOneGroup(3, 7),
                             apb1_queries::OneMonth(5),
                             apb1_queries::OneQuarter(2)}) {
    const Warehouse cold = MakeFacade(1, /*workers=*/1, dir.path());
    const QueryOutcome outcome = cold.Execute(q);
    EXPECT_EQ(outcome.rows_scanned, 0) << q.name();
    EXPECT_GT(outcome.rows_summarized, 0) << q.name();
    EXPECT_EQ(outcome.fragments_summarized, outcome.fragments_processed)
        << q.name();
    EXPECT_GT(outcome.pages_read, 0) << q.name();
    EXPECT_LE(outcome.pages_read, 4 * outcome.fragments_summarized) << q.name();
  }
  // The single-fragment aligned query is the paper's best case: the
  // whole answer comes from at most four pages.
  const Warehouse cold = MakeFacade(1, /*workers=*/1, dir.path());
  const QueryOutcome best = cold.Execute(apb1_queries::OneMonthOneGroup(3, 7));
  EXPECT_LE(best.pages_read, 4);
}

}  // namespace
}  // namespace mdw
