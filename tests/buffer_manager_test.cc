#include <gtest/gtest.h>

#include "sim/buffer_manager.h"

namespace mdw {
namespace {

TEST(BufferManagerTest, MissThenHit) {
  BufferManager pool(100);
  const auto key = BufferManager::MakeKey(0, 3, 40);
  EXPECT_FALSE(pool.Lookup(key));
  pool.Insert(key, 8);
  EXPECT_TRUE(pool.Lookup(key));
  EXPECT_EQ(pool.hits(), 1);
  EXPECT_EQ(pool.misses(), 1);
  EXPECT_EQ(pool.used_pages(), 8);
}

TEST(BufferManagerTest, EvictsLruWhenFull) {
  BufferManager pool(16);
  const auto a = BufferManager::MakeKey(0, 0, 0);
  const auto b = BufferManager::MakeKey(0, 0, 8);
  const auto c = BufferManager::MakeKey(0, 0, 16);
  pool.Insert(a, 8);
  pool.Insert(b, 8);
  // Touch a so b becomes the LRU victim.
  EXPECT_TRUE(pool.Lookup(a));
  pool.Insert(c, 8);
  EXPECT_TRUE(pool.Lookup(a));
  EXPECT_FALSE(pool.Lookup(b));
  EXPECT_TRUE(pool.Lookup(c));
  EXPECT_EQ(pool.evictions(), 1);
  EXPECT_LE(pool.used_pages(), 16);
}

TEST(BufferManagerTest, ReinsertingTouchesInsteadOfDuplicating) {
  BufferManager pool(16);
  const auto a = BufferManager::MakeKey(0, 0, 0);
  pool.Insert(a, 8);
  pool.Insert(a, 8);
  EXPECT_EQ(pool.used_pages(), 8);
}

TEST(BufferManagerTest, OversizedGranuleAdmittedAlone) {
  BufferManager pool(4);
  const auto big = BufferManager::MakeKey(0, 0, 0);
  pool.Insert(big, 8);  // larger than the pool
  EXPECT_TRUE(pool.Lookup(big));
  // The next insert evicts it.
  pool.Insert(BufferManager::MakeKey(0, 0, 8), 4);
  EXPECT_FALSE(pool.Lookup(big));
}

TEST(BufferManagerTest, KeysDistinguishSpaceDiskAndPage) {
  const auto a = BufferManager::MakeKey(0, 1, 100);
  const auto b = BufferManager::MakeKey(1, 1, 100);
  const auto c = BufferManager::MakeKey(0, 2, 100);
  const auto d = BufferManager::MakeKey(0, 1, 101);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_NE(b, c);
}

TEST(BufferManagerTest, ManyInsertionsStayWithinCapacity) {
  BufferManager pool(1'000);
  for (int i = 0; i < 10'000; ++i) {
    pool.Insert(BufferManager::MakeKey(0, i % 7, i * 8), 8);
    EXPECT_LE(pool.used_pages(), 1'000);
  }
  EXPECT_GT(pool.evictions(), 8'000);
}

TEST(BufferManagerTest, HitRatioOnCyclicAccessSmallerThanPool) {
  BufferManager pool(80);
  // Working set of 5 granules x 8 pages = 40 pages fits the pool:
  // after the first cold pass, everything hits.
  for (int round = 0; round < 10; ++round) {
    for (int g = 0; g < 5; ++g) {
      const auto key = BufferManager::MakeKey(0, 0, g * 8);
      if (!pool.Lookup(key)) pool.Insert(key, 8);
    }
  }
  EXPECT_EQ(pool.misses(), 5);
  EXPECT_EQ(pool.hits(), 45);
}

TEST(BufferManagerTest, ResetDropsContentsAndCounters) {
  BufferManager pool(100);
  const auto key = BufferManager::MakeKey(0, 0, 0);
  pool.Insert(key, 8);
  EXPECT_TRUE(pool.Lookup(key));
  pool.Reset();
  EXPECT_EQ(pool.used_pages(), 0);
  EXPECT_EQ(pool.hits(), 0);
  EXPECT_EQ(pool.misses(), 0);
  EXPECT_EQ(pool.evictions(), 0);
  EXPECT_FALSE(pool.Lookup(key));  // cold again, counted as a fresh miss
  EXPECT_EQ(pool.misses(), 1);
  EXPECT_EQ(pool.capacity_pages(), 100);  // capacity survives the reset
}

}  // namespace
}  // namespace mdw
