#include <gtest/gtest.h>

#include <vector>

#include "bitmap/encoded_bitmap_index.h"
#include "bitmap/index_set.h"
#include "bitmap/simple_bitmap_index.h"
#include "common/rng.h"
#include "schema/apb1.h"

namespace mdw {
namespace {

// A small column of foreign keys into a hierarchy, for direct index tests.
std::vector<std::int64_t> RandomColumn(std::int64_t rows,
                                       std::int64_t leaf_card,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> column;
  column.reserve(static_cast<std::size_t>(rows));
  for (std::int64_t i = 0; i < rows; ++i) {
    column.push_back(rng.Uniform(0, leaf_card - 1));
  }
  return column;
}

// Brute-force reference: rows whose key's ancestor at `depth` equals value.
BitVector Reference(const Hierarchy& h,
                    const std::vector<std::int64_t>& column, Depth depth,
                    std::int64_t value) {
  BitVector expected(static_cast<std::int64_t>(column.size()));
  for (std::size_t r = 0; r < column.size(); ++r) {
    if (h.AncestorOfLeaf(column[r], depth) == value) {
      expected.Set(static_cast<std::int64_t>(r));
    }
  }
  return expected;
}

TEST(SimpleBitmapIndexTest, BitmapCountSumsLevelCardinalities) {
  const Hierarchy time({{"year", 2}, {"quarter", 8}, {"month", 24}});
  const auto column = RandomColumn(500, 24, 1);
  const SimpleBitmapIndex index(time, column);
  EXPECT_EQ(index.bitmap_count(), 34);  // paper: 24 + 8 + 2
  EXPECT_EQ(index.row_count(), 500);
}

TEST(SimpleBitmapIndexTest, SelectMatchesBruteForceAllLevels) {
  const Hierarchy time({{"year", 2}, {"quarter", 8}, {"month", 24}});
  const auto column = RandomColumn(1'000, 24, 2);
  const SimpleBitmapIndex index(time, column);
  for (Depth d = 0; d < time.num_levels(); ++d) {
    for (std::int64_t v = 0; v < time.Cardinality(d); ++v) {
      EXPECT_TRUE(index.Select(d, v) == Reference(time, column, d, v))
          << "depth " << d << " value " << v;
    }
  }
}

TEST(SimpleBitmapIndexTest, LevelBitmapsPartitionRows) {
  const Hierarchy time({{"year", 2}, {"quarter", 8}, {"month", 24}});
  const auto column = RandomColumn(800, 24, 3);
  const SimpleBitmapIndex index(time, column);
  for (Depth d = 0; d < time.num_levels(); ++d) {
    std::int64_t total = 0;
    for (std::int64_t v = 0; v < time.Cardinality(d); ++v) {
      total += index.Bitmap(d, v).Count();
    }
    EXPECT_EQ(total, 800) << "level " << d;
  }
}

class EncodedIndexTest : public ::testing::Test {
 protected:
  EncodedIndexTest()
      : product_({{"division", 8},
                  {"line", 24},
                  {"family", 120},
                  {"group", 480},
                  {"class", 960},
                  {"code", 14'400}}),
        column_(RandomColumn(2'000, 14'400, 4)),
        index_(product_, column_) {}

  Hierarchy product_;
  std::vector<std::int64_t> column_;
  EncodedBitmapIndex index_;
};

TEST_F(EncodedIndexTest, FifteenBitmapsForProduct) {
  // Paper Sec. 3.2: 15 bitmaps instead of 14,400 simple ones.
  EXPECT_EQ(index_.bitmap_count(), 15);
}

TEST_F(EncodedIndexTest, SelectLeafMatchesBruteForce) {
  for (std::int64_t code = 0; code < 14'400; code += 977) {
    EXPECT_TRUE(index_.Select(5, code) ==
                Reference(product_, column_, 5, code))
        << "code " << code;
  }
}

TEST_F(EncodedIndexTest, SelectEveryLevelMatchesBruteForce) {
  for (Depth d = 0; d < product_.num_levels(); ++d) {
    const std::int64_t step = std::max<std::int64_t>(
        product_.Cardinality(d) / 17, 1);
    for (std::int64_t v = 0; v < product_.Cardinality(d); v += step) {
      EXPECT_TRUE(index_.Select(d, v) == Reference(product_, column_, d, v))
          << "depth " << d << " value " << v;
    }
  }
}

TEST_F(EncodedIndexTest, GroupSelectionReadsTenBitmaps) {
  // Paper Table 1: a GROUP is located via the 10-bit prefix.
  EXPECT_EQ(index_.BitmapsRead(/*depth=*/3, /*skip_bits=*/0), 10);
  // A CODE within a known group: only the 5 suffix bitmaps.
  EXPECT_EQ(index_.BitmapsRead(/*depth=*/5, /*skip_bits=*/10), 5);
  // A full CODE lookup: all 15 (paper: "needs to evaluate 15 bitmaps").
  EXPECT_EQ(index_.BitmapsRead(/*depth=*/5, /*skip_bits=*/0), 15);
}

TEST_F(EncodedIndexTest, SelectWithinPrefixEqualsFullSelectInsideFragment) {
  // Within the rows of one group, suffix-only selection of a code must
  // agree with the full selection.
  const std::int64_t code = 4'217;
  const std::int64_t group = product_.AncestorOfLeaf(code, 3);
  const BitVector group_rows = index_.Select(3, group);
  BitVector suffix = index_.SelectWithinPrefix(5, code, 10);
  suffix &= group_rows;
  EXPECT_TRUE(suffix == index_.Select(5, code));
}

TEST_F(EncodedIndexTest, PrefixPatternMatchesEncoding) {
  const std::int64_t code = 123;
  const auto full = index_.PrefixPattern(5, code);
  EXPECT_EQ(full, product_.EncodeLeaf(code));
  const auto group_prefix = index_.PrefixPattern(3, product_.AncestorOfLeaf(code, 3));
  EXPECT_EQ(group_prefix, full >> 5);
}

TEST_F(EncodedIndexTest, DisjointValuesDisjointRows) {
  const BitVector a = index_.Select(0, 0);  // division 0
  const BitVector b = index_.Select(0, 1);  // division 1
  EXPECT_TRUE((a & b).None());
}

TEST(EncodedIndexCustomerTest, TwelveBitmaps) {
  const Hierarchy customer({{"retailer", 144}, {"store", 1'440}});
  const auto column = RandomColumn(1'000, 1'440, 5);
  const EncodedBitmapIndex index(customer, column);
  EXPECT_EQ(index.bitmap_count(), 12);  // paper: 12 bitmaps for CUSTOMER
  for (std::int64_t store = 0; store < 1'440; store += 111) {
    EXPECT_TRUE(index.Select(1, store) ==
                Reference(customer, column, 1, store));
  }
}

TEST(IndexSetTest, TinySchemaHasAllIndices) {
  const auto schema = MakeTinyApb1Schema();
  FactColumns facts;
  facts.columns.resize(4);
  Rng rng(6);
  for (int r = 0; r < 3'000; ++r) {
    for (DimId d = 0; d < 4; ++d) {
      facts.columns[static_cast<std::size_t>(d)].push_back(rng.Uniform(
          0, schema.dimension(d).hierarchy().LeafCardinality() - 1));
    }
  }
  const IndexSet set(schema, facts);
  EXPECT_NE(set.encoded_index(kApb1Product), nullptr);
  EXPECT_NE(set.encoded_index(kApb1Customer), nullptr);
  EXPECT_NE(set.simple_index(kApb1Channel), nullptr);
  EXPECT_NE(set.simple_index(kApb1Time), nullptr);
  EXPECT_EQ(set.simple_index(kApb1Product), nullptr);
  EXPECT_GT(set.TotalBitmapCount(), 0);
}

TEST(IndexSetTest, SelectAgreesAcrossIndexKinds) {
  const auto schema = MakeTinyApb1Schema();
  FactColumns facts;
  facts.columns.resize(4);
  Rng rng(7);
  for (int r = 0; r < 2'000; ++r) {
    for (DimId d = 0; d < 4; ++d) {
      facts.columns[static_cast<std::size_t>(d)].push_back(rng.Uniform(
          0, schema.dimension(d).hierarchy().LeafCardinality() - 1));
    }
  }
  const IndexSet set(schema, facts);
  for (DimId d = 0; d < 4; ++d) {
    const auto& h = schema.dimension(d).hierarchy();
    for (Depth depth = 0; depth < h.num_levels(); ++depth) {
      for (std::int64_t v = 0; v < h.Cardinality(depth);
           v += std::max<std::int64_t>(h.Cardinality(depth) / 5, 1)) {
        const auto got = set.Select(d, depth, v);
        const auto expected = Reference(
            h, facts.columns[static_cast<std::size_t>(d)], depth, v);
        EXPECT_TRUE(got == expected)
            << "dim " << d << " depth " << depth << " value " << v;
      }
    }
  }
}

}  // namespace
}  // namespace mdw
