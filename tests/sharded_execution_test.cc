// Sharded-store tests: layout integrity of the shard-major clustered
// warehouse (contiguous shard regions, allocation-driven fragment
// placement), full parity of sharded execution against the unsharded
// store and full-scan ground truth across shard counts x workers x
// seeds, determinism of the whole execution record (per-shard counters
// included) at any worker count, and the skew metric.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <tuple>
#include <vector>

#include "alloc/disk_allocation.h"
#include "common/thread_pool.h"
#include "core/mini_warehouse.h"
#include "core/warehouse.h"
#include "fragment/query_planner.h"
#include "fragment/star_query.h"
#include "schema/apb1.h"

namespace mdw {
namespace {

std::vector<FragAttr> MonthGroup() {
  return {{kApb1Time, 2}, {kApb1Product, 3}};
}

// A reduced APB-1 sweep: hierarchy-aligned (fully covered), residual,
// unsupported, multi-fragment and IN-list shapes.
std::vector<StarQuery> QuerySweep() {
  std::vector<StarQuery> queries;
  queries.push_back(apb1_queries::OneMonthOneGroup(3, 7));
  queries.push_back(apb1_queries::OneMonth(5));
  queries.push_back(apb1_queries::OneQuarter(2));
  queries.push_back(apb1_queries::OneCode(30));
  queries.push_back(apb1_queries::OneCodeOneMonth(30, 3));
  queries.push_back(apb1_queries::OneStore(17));
  queries.push_back(apb1_queries::OneGroupOneStore(7, 17));
  queries.push_back(StarQuery("IN_LIST", {{kApb1Product, 5, {1, 2, 50}},
                                          {kApb1Time, 2, {0, 6}}}));
  return queries;
}

MiniWarehouse MakeSharded(int num_shards, std::uint64_t seed = 42,
                          AllocationConfig allocation = {}) {
  return MiniWarehouse(MakeTinyApb1Schema(), seed, MonthGroup(),
                       /*enable_summaries=*/true, num_shards, allocation);
}

// ---------------------------------------------------------------------------
// Shard layout integrity

TEST(ShardedLayoutTest, ShardRegionsTileTheTable) {
  const MiniWarehouse wh = MakeSharded(4);
  ASSERT_EQ(wh.num_shards(), 4);
  std::int64_t covered = 0;
  for (int s = 0; s < wh.num_shards(); ++s) {
    const auto [begin, end] = wh.ShardRows(s);
    ASSERT_LE(begin, end);
    if (s > 0) {
      ASSERT_EQ(begin, wh.ShardRows(s - 1).second);
    }
    covered += end - begin;
  }
  EXPECT_EQ(wh.ShardRows(0).first, 0);
  EXPECT_EQ(covered, wh.row_count());
}

TEST(ShardedLayoutTest, FragmentRangesTileTheirShardInAscendingIdOrder) {
  const MiniWarehouse wh = MakeSharded(4);
  std::set<FragId> seen;
  for (int s = 0; s < wh.num_shards(); ++s) {
    const auto [shard_begin, shard_end] = wh.ShardRows(s);
    std::int64_t cursor = shard_begin;
    FragId prev = -1;
    for (const FragId f : wh.ShardFragments(s)) {
      EXPECT_GT(f, prev);
      prev = f;
      EXPECT_EQ(wh.ShardOfFragment(f), s);
      const auto [begin, end] = wh.FragmentRows(f);
      ASSERT_EQ(begin, cursor) << "fragment " << f;
      cursor = end;
      seen.insert(f);
    }
    EXPECT_EQ(cursor, shard_end);
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()),
            wh.cluster_fragmentation()->FragmentCount());
}

TEST(ShardedLayoutTest, ShardPlacementMatchesTheDiskAllocation) {
  AllocationConfig allocation;
  allocation.round_gap = 1;
  const MiniWarehouse wh = MakeSharded(4, /*seed=*/42, allocation);
  ASSERT_NE(wh.shard_allocation(), nullptr);
  EXPECT_EQ(wh.shard_allocation()->num_disks(), 4);
  EXPECT_EQ(wh.shard_allocation()->config().round_gap, 1);
  for (FragId f = 0; f < wh.cluster_fragmentation()->FragmentCount(); ++f) {
    EXPECT_EQ(wh.ShardOfFragment(f), wh.shard_allocation()->DiskOfFragment(f));
  }
}

TEST(ShardedLayoutTest, EveryRowLiesInItsFragmentsShard) {
  const MiniWarehouse wh = MakeSharded(7);
  const Fragmentation& f = *wh.cluster_fragmentation();
  const int dims = wh.schema().num_dimensions();
  std::vector<std::int64_t> leaf(static_cast<std::size_t>(dims));
  for (int s = 0; s < wh.num_shards(); ++s) {
    const auto [begin, end] = wh.ShardRows(s);
    for (std::int64_t row = begin; row < end; ++row) {
      for (DimId d = 0; d < dims; ++d) {
        leaf[static_cast<std::size_t>(d)] =
            wh.facts().columns[static_cast<std::size_t>(d)]
                              [static_cast<std::size_t>(row)];
      }
      ASSERT_EQ(wh.ShardOfFragment(f.FragmentOfRow(leaf)), s)
          << "row " << row;
    }
  }
}

TEST(ShardedLayoutTest, UnshardedStoreHasNoAllocationAndOneShard) {
  const MiniWarehouse wh(MakeTinyApb1Schema(), /*seed=*/42, MonthGroup());
  EXPECT_EQ(wh.num_shards(), 1);
  EXPECT_EQ(wh.shard_allocation(), nullptr);
  EXPECT_EQ(wh.ShardRows(0), (std::pair<std::int64_t, std::int64_t>{
                                 0, wh.row_count()}));
}

// ---------------------------------------------------------------------------
// Parity: full scan == unsharded == sharded, at shards {1, 4, 7} x
// workers {1, 2, 8} x seeds {7, 42, 123}.

class ShardedParitySweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t /*seed*/, int /*shards*/, int /*workers*/>> {
};

TEST_P(ShardedParitySweep, ShardingNeverChangesTheAnswer) {
  const auto [seed, shards, workers] = GetParam();
  const Warehouse sharded({.schema = MakeTinyApb1Schema(),
                           .fragmentation = MonthGroup(),
                           .backend = BackendKind::kMaterialized,
                           .seed = seed,
                           .num_workers = workers,
                           .num_shards = shards});
  const Warehouse unsharded({.schema = MakeTinyApb1Schema(),
                             .fragmentation = MonthGroup(),
                             .backend = BackendKind::kMaterialized,
                             .seed = seed,
                             .num_workers = 1});
  const MiniWarehouse& mini = *sharded.materialized();
  ASSERT_EQ(mini.num_shards(), shards);
  for (const auto& query : QuerySweep()) {
    const auto expected = mini.ExecuteFullScan(query);
    const auto outcome = sharded.Execute(query);
    const auto reference = unsharded.Execute(query);
    ASSERT_TRUE(outcome.aggregate.has_value()) << query.name();
    EXPECT_EQ(*outcome.aggregate, expected)
        << query.name() << " seed=" << seed << " shards=" << shards
        << " workers=" << workers;
    // The shard split reclassifies nothing: totals match the unsharded
    // store exactly, counters included.
    EXPECT_EQ(*outcome.aggregate, *reference.aggregate) << query.name();
    EXPECT_EQ(outcome.rows_scanned, reference.rows_scanned) << query.name();
    EXPECT_EQ(outcome.rows_summarized, reference.rows_summarized)
        << query.name();
    EXPECT_EQ(outcome.fragments_summarized, reference.fragments_summarized)
        << query.name();
    // Per-shard counters, present iff sharded, sum to the totals.
    if (shards == 1) {
      EXPECT_TRUE(outcome.shards.empty()) << query.name();
      EXPECT_EQ(outcome.shard_skew, 0) << query.name();
    } else {
      ASSERT_EQ(static_cast<int>(outcome.shards.size()), shards)
          << query.name();
      std::int64_t rows_scanned = 0, rows_summarized = 0, fragments = 0,
                   fragments_summarized = 0;
      for (const auto& w : outcome.shards) {
        rows_scanned += w.rows_scanned;
        rows_summarized += w.rows_summarized;
        fragments += w.fragments;
        fragments_summarized += w.fragments_summarized;
      }
      EXPECT_EQ(rows_scanned, outcome.rows_scanned) << query.name();
      EXPECT_EQ(rows_summarized, outcome.rows_summarized) << query.name();
      EXPECT_EQ(fragments, outcome.fragments_processed) << query.name();
      EXPECT_EQ(fragments_summarized, outcome.fragments_summarized)
          << query.name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByShardsByWorkers, ShardedParitySweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(7, 42, 123),
                       ::testing::Values(1, 4, 7),
                       ::testing::Values(1, 2, 8)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param)) + "_w" +
             std::to_string(std::get<2>(info.param));
    });

// Allocation knobs flow through the façade: a gapped allocation places
// fragments differently but answers identically.
TEST(ShardedParitySweep, RoundGapChangesPlacementNotAnswers) {
  AllocationConfig gapped;
  gapped.round_gap = 1;
  const MiniWarehouse plain = MakeSharded(4);
  const MiniWarehouse shifted = MakeSharded(4, /*seed=*/42, gapped);
  bool any_moved = false;
  for (FragId f = 0; f < plain.cluster_fragmentation()->FragmentCount();
       ++f) {
    any_moved |= plain.ShardOfFragment(f) != shifted.ShardOfFragment(f);
  }
  EXPECT_TRUE(any_moved);
  const Fragmentation fp(&plain.schema(), MonthGroup());
  const Fragmentation fs(&shifted.schema(), MonthGroup());
  for (const auto& query : QuerySweep()) {
    EXPECT_EQ(plain.ExecuteWithFragmentation(query, fp).result,
              shifted.ExecuteWithFragmentation(query, fs).result)
        << query.name();
  }
}

// ---------------------------------------------------------------------------
// Determinism: the ENTIRE sharded execution record — per-shard counters
// included — is bit-identical at any worker count.

TEST(ShardedDeterminismTest, IdenticalRecordAtAnyWorkerCount) {
  const MiniWarehouse wh = MakeSharded(4);
  const Fragmentation frag(&wh.schema(), MonthGroup());
  const QueryPlanner planner(&wh.schema(), &frag);
  const ThreadPool pool2(2), pool8(8);
  for (const auto& query : QuerySweep()) {
    const auto plan = planner.Plan(query);
    const auto serial = wh.ExecuteWithPlan(query, plan);
    EXPECT_EQ(wh.ExecuteWithPlan(query, plan, &pool2), serial)
        << query.name();
    EXPECT_EQ(wh.ExecuteWithPlan(query, plan, &pool8), serial)
        << query.name();
    EXPECT_EQ(serial.result, wh.ExecuteFullScan(query)) << query.name();
  }
}

// ---------------------------------------------------------------------------
// Skew metric

TEST(ShardedSkewTest, BalancedAndDegenerateBounds) {
  const MiniWarehouse wh = MakeSharded(4);
  const Fragmentation frag(&wh.schema(), MonthGroup());
  const QueryPlanner planner(&wh.schema(), &frag);

  // The no-support scan touches every fragment; round robin spreads the
  // rows, so skew is near 1 (and by definition in [1, num_shards]).
  const auto all = apb1_queries::OneStore(17);
  const auto e_all = wh.ExecuteWithPlan(all, planner.Plan(all));
  ASSERT_EQ(static_cast<int>(e_all.shards.size()), 4);
  EXPECT_GE(e_all.ShardSkew(), 1.0);
  EXPECT_LE(e_all.ShardSkew(), 4.0);
  EXPECT_LT(e_all.ShardSkew(), 1.5);

  // A single-fragment query is the degenerate case: all busy-work on one
  // shard, skew == num_shards.
  const auto one = apb1_queries::OneMonthOneGroup(3, 7);
  const auto e_one = wh.ExecuteWithPlan(one, planner.Plan(one));
  EXPECT_DOUBLE_EQ(e_one.ShardSkew(), 4.0);

  // Unsharded records carry no skew.
  const MiniWarehouse flat(MakeTinyApb1Schema(), /*seed=*/42, MonthGroup());
  const Fragmentation ff(&flat.schema(), MonthGroup());
  const QueryPlanner fp(&flat.schema(), &ff);
  EXPECT_EQ(flat.ExecuteWithPlan(all, fp.Plan(all)).ShardSkew(), 0);
}

}  // namespace
}  // namespace mdw
