#include <gtest/gtest.h>

#include "sim/metrics.h"
#include "sim/sim_config.h"

namespace mdw {
namespace {

TEST(MetricsTest, SummarizeEmpty) {
  SimResult result;
  SummarizeResponses(&result);
  EXPECT_DOUBLE_EQ(result.avg_response_ms, 0);
  EXPECT_DOUBLE_EQ(result.min_response_ms, 0);
  EXPECT_DOUBLE_EQ(result.max_response_ms, 0);
}

TEST(MetricsTest, SummarizeComputesStats) {
  SimResult result;
  result.response_ms = {10, 20, 60};
  SummarizeResponses(&result);
  EXPECT_DOUBLE_EQ(result.avg_response_ms, 30);
  EXPECT_DOUBLE_EQ(result.min_response_ms, 10);
  EXPECT_DOUBLE_EQ(result.max_response_ms, 60);
}

TEST(MetricsTest, ThroughputPerSecond) {
  SimResult result;
  result.response_ms = {1, 2, 3, 4};
  result.makespan_ms = 2'000;
  EXPECT_DOUBLE_EQ(result.ThroughputPerSecond(), 2.0);
  result.makespan_ms = 0;
  EXPECT_DOUBLE_EQ(result.ThroughputPerSecond(), 0.0);
}

TEST(SimConfigTest, DefaultsMatchTableFour) {
  const SimConfig config;
  EXPECT_EQ(config.num_disks, 100);
  EXPECT_EQ(config.num_nodes, 20);
  EXPECT_DOUBLE_EQ(config.disk.avg_seek_ms, 10.0);
  EXPECT_DOUBLE_EQ(config.disk.settle_ms, 3.0);
  EXPECT_DOUBLE_EQ(config.disk.per_page_ms, 1.0);
  EXPECT_DOUBLE_EQ(config.network_mbit_per_s, 100.0);
  EXPECT_EQ(config.small_message_bytes, 128);
  EXPECT_EQ(config.fact_buffer_pages, 1'000);
  EXPECT_EQ(config.bitmap_buffer_pages, 5'000);
  EXPECT_EQ(config.fact_prefetch_pages, 8);
  EXPECT_EQ(config.bitmap_prefetch_pages, 5);
  config.Validate();
}

TEST(SimConfigTest, LabelMentionsHardware) {
  SimConfig config;
  config.num_disks = 60;
  config.num_nodes = 12;
  config.tasks_per_node = 5;
  const auto label = config.Label();
  EXPECT_NE(label.find("d=60"), std::string::npos);
  EXPECT_NE(label.find("p=12"), std::string::npos);
  EXPECT_NE(label.find("t=5"), std::string::npos);
}

TEST(SimConfigTest, OwnerNodeRoundRobin) {
  SimConfig config;
  config.num_disks = 100;
  config.num_nodes = 20;
  EXPECT_EQ(config.OwnerNode(0), 0);
  EXPECT_EQ(config.OwnerNode(19), 19);
  EXPECT_EQ(config.OwnerNode(20), 0);
  EXPECT_EQ(config.OwnerNode(99), 19);
}

TEST(SimConfigTest, ArchitectureNames) {
  EXPECT_STREQ(ToString(Architecture::kSharedDisk), "Shared Disk");
  EXPECT_STREQ(ToString(Architecture::kSharedNothing), "Shared Nothing");
}

TEST(SimConfigTest, ValidationCatchesBadBuffers) {
  SimConfig config;
  config.fact_buffer_pages = 4;  // smaller than the 8-page prefetch
  EXPECT_DEATH(config.Validate(), "prefetch granule");
}

TEST(SimConfigTest, ValidationCatchesBadSkew) {
  SimConfig config;
  config.fragment_skew_theta = 1.0;
  EXPECT_DEATH(config.Validate(), "skew theta");
}

}  // namespace
}  // namespace mdw
