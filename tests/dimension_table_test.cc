#include <gtest/gtest.h>

#include "schema/apb1.h"
#include "schema/dimension_table.h"

namespace mdw {
namespace {

TEST(DimensionTableTest, OneRowPerLeaf) {
  const auto schema = MakeTinyApb1Schema();
  const DimensionTable products(schema.dimension(kApb1Product));
  EXPECT_EQ(products.row_count(), 96);
  const DimensionTable customers(schema.dimension(kApb1Customer));
  EXPECT_EQ(customers.row_count(), 40);
}

TEST(DimensionTableTest, RowCarriesAncestorsAndNames) {
  const auto schema = MakeTinyApb1Schema();
  const DimensionTable products(schema.dimension(kApb1Product));
  // Tiny product: 4 codes per group -> code 30 belongs to group 7.
  const auto& row = products.RowForKey(30);
  EXPECT_EQ(row.key, 30);
  EXPECT_EQ(row.level_values[3], 7);
  EXPECT_EQ(row.level_names[3], "GROUP_7");
  EXPECT_EQ(row.level_names[5], "CODE_30");
}

TEST(DimensionTableTest, KeysBelowUsesBtreeRangeScan) {
  const auto schema = MakeTinyApb1Schema();
  const DimensionTable products(schema.dimension(kApb1Product));
  const auto keys = products.KeysBelow(3, 7);  // group 7 -> codes 28..31
  ASSERT_EQ(keys.size(), 4u);
  EXPECT_EQ(keys.front(), 28);
  EXPECT_EQ(keys.back(), 31);
  for (const auto key : keys) {
    EXPECT_EQ(products.RowForKey(key).level_values[3], 7);
  }
}

TEST(DimensionTableTest, KeysBelowWholeDimension) {
  const auto schema = MakeTinyApb1Schema();
  const DimensionTable time(schema.dimension(kApb1Time));
  const auto keys = time.KeysBelow(0, 0);  // the single year
  EXPECT_EQ(keys.size(), 12u);
}

TEST(DimensionTableTest, ResolveNameRoundTrips) {
  const auto schema = MakeTinyApb1Schema();
  const DimensionTable products(schema.dimension(kApb1Product));
  Depth depth = -1;
  std::int64_t value = -1;
  ASSERT_TRUE(products.ResolveName("GROUP_7", &depth, &value));
  EXPECT_EQ(depth, 3);
  EXPECT_EQ(value, 7);
  ASSERT_TRUE(products.ResolveName("CODE_95", &depth, &value));
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(value, 95);
  EXPECT_FALSE(products.ResolveName("WIDGET_1", &depth, &value));
  EXPECT_FALSE(products.ResolveName("GROUP_9999", &depth, &value));
}

TEST(DimensionTableTest, IndexInvariantsHold) {
  const auto schema = MakeTinyApb1Schema();
  const DimensionTable products(schema.dimension(kApb1Product));
  products.index().CheckInvariants();
  EXPECT_EQ(products.index().size(), products.row_count());
}

TEST(DimensionTableTest, PaperScaleDimensionTablesAreSmall) {
  // Paper Sec. 4: "our four dimension tables only occupy 1 MB".
  const auto schema = MakeApb1Schema();
  std::int64_t total = 0;
  for (DimId d = 0; d < schema.num_dimensions(); ++d) {
    total += DimensionTable(schema.dimension(d)).ApproximateBytes();
  }
  EXPECT_LT(total, 4 * 1024 * 1024);
  EXPECT_GT(total, 256 * 1024);
}

}  // namespace
}  // namespace mdw
