#include <gtest/gtest.h>

#include "bitmap/compressed_bitvector.h"
#include "common/rng.h"

namespace mdw {
namespace {

BitVector RandomBits(std::int64_t size, double density, std::uint64_t seed) {
  Rng rng(seed);
  BitVector bits(size);
  for (std::int64_t i = 0; i < size; ++i) {
    if (rng.UniformReal() < density) bits.Set(i);
  }
  return bits;
}

TEST(CompressedBitVectorTest, EmptyBitmapCompressesToFills) {
  BitVector bits(10'000);
  const CompressedBitVector compressed(bits);
  EXPECT_EQ(compressed.Count(), 0);
  EXPECT_EQ(compressed.word_count(), 1);  // a single zero fill
  EXPECT_TRUE(compressed.Decompress() == bits);
  EXPECT_GT(compressed.CompressionRatio(), 100.0);
}

TEST(CompressedBitVectorTest, FullBitmapCompressesToFills) {
  BitVector bits(10'000);
  bits.SetAll();
  const CompressedBitVector compressed(bits);
  EXPECT_EQ(compressed.Count(), 10'000);
  EXPECT_LE(compressed.word_count(), 2);  // one-fill + partial literal
  EXPECT_TRUE(compressed.Decompress() == bits);
}

TEST(CompressedBitVectorTest, SingleBitRoundTrips) {
  for (const std::int64_t position : {0LL, 30LL, 31LL, 62LL, 9'999LL}) {
    BitVector bits(10'000);
    bits.Set(position);
    const CompressedBitVector compressed(bits);
    EXPECT_EQ(compressed.Count(), 1) << position;
    EXPECT_TRUE(compressed.Decompress() == bits) << position;
  }
}

TEST(CompressedBitVectorTest, SparseBitmapCompressesWell) {
  // One bit per 1,440 rows, the 1STORE bitmap profile.
  BitVector bits(1'000'000);
  for (std::int64_t i = 0; i < 1'000'000; i += 1'440) bits.Set(i);
  const CompressedBitVector compressed(bits);
  EXPECT_TRUE(compressed.Decompress() == bits);
  EXPECT_GT(compressed.CompressionRatio(), 15.0);
}

TEST(CompressedBitVectorTest, RandomDenseBitmapBarelyGrows) {
  const auto bits = RandomBits(100'000, 0.5, 7);
  const CompressedBitVector compressed(bits);
  EXPECT_TRUE(compressed.Decompress() == bits);
  // Random 50% bitmaps are incompressible: ~32/31 of the raw size.
  EXPECT_GT(compressed.CompressionRatio(), 0.9);
  EXPECT_LT(compressed.CompressionRatio(), 1.05);
}

TEST(CompressedBitVectorTest, ClusteredRunsCompress) {
  // Hit clustering (the point of MDHF!): the same 10% density in one
  // contiguous run compresses far better than spread at random.
  const std::int64_t n = 500'000;
  BitVector clustered(n);
  for (std::int64_t i = 0; i < n / 10; ++i) clustered.Set(i);
  const auto random_bits = RandomBits(n, 0.1, 9);
  const CompressedBitVector c1(clustered), c2(random_bits);
  EXPECT_GT(c1.CompressionRatio(), 5 * c2.CompressionRatio());
}

TEST(CompressedBitVectorTest, AndMatchesPlainAnd) {
  const auto a = RandomBits(50'000, 0.02, 11);
  const auto b = RandomBits(50'000, 0.3, 12);
  const CompressedBitVector ca(a), cb(b);
  const auto result = ca.And(cb);
  EXPECT_TRUE(result.Decompress() == (a & b));
  EXPECT_EQ(result.Count(), (a & b).Count());
}

TEST(CompressedBitVectorTest, OrMatchesPlainOr) {
  const auto a = RandomBits(50'000, 0.02, 13);
  const auto b = RandomBits(50'000, 0.01, 14);
  const CompressedBitVector ca(a), cb(b);
  const auto result = ca.Or(cb);
  EXPECT_TRUE(result.Decompress() == (a | b));
}

TEST(CompressedBitVectorTest, AndOfSparseStaysSmall) {
  BitVector a(1'000'000), b(1'000'000);
  for (std::int64_t i = 0; i < 1'000'000; i += 997) a.Set(i);
  for (std::int64_t i = 0; i < 1'000'000; i += 1'013) b.Set(i);
  const auto result = CompressedBitVector(a).And(CompressedBitVector(b));
  EXPECT_LT(result.SizeBytes(), 2'000);
  EXPECT_TRUE(result.Decompress() == (a & b));
}

TEST(CompressedBitVectorTest, SizeAccountors) {
  BitVector bits(62);  // exactly two 31-bit groups
  bits.Set(0);
  const CompressedBitVector compressed(bits);
  EXPECT_EQ(compressed.size(), 62);
  EXPECT_EQ(compressed.UncompressedBytes(), 8);
}

class CompressedRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::int64_t, double>> {};

// Property: compress -> decompress is the identity, Count matches, and
// Boolean ops agree with the plain implementation, across sizes (around
// the 31-bit group boundaries) and densities.
TEST_P(CompressedRoundTrip, Identity) {
  const auto [size, density] = GetParam();
  const auto bits =
      RandomBits(size, density, static_cast<std::uint64_t>(size) + 17);
  const CompressedBitVector compressed(bits);
  EXPECT_TRUE(compressed.Decompress() == bits);
  EXPECT_EQ(compressed.Count(), bits.Count());

  const auto other =
      RandomBits(size, 0.5 * density, static_cast<std::uint64_t>(size) + 18);
  const CompressedBitVector compressed_other(other);
  EXPECT_TRUE(compressed.And(compressed_other).Decompress() ==
              (bits & other));
  EXPECT_TRUE(compressed.Or(compressed_other).Decompress() ==
              (bits | other));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDensities, CompressedRoundTrip,
    ::testing::Combine(
        ::testing::Values<std::int64_t>(1, 30, 31, 32, 61, 62, 63, 1'000,
                                        31 * 33, 100'003),
        ::testing::Values(0.0, 0.001, 0.1, 0.9, 1.0)));

}  // namespace
}  // namespace mdw
