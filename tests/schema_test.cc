#include <gtest/gtest.h>

#include "schema/apb1.h"
#include "schema/star_schema.h"

namespace mdw {
namespace {

TEST(Apb1SchemaTest, PaperConfigurationCardinalities) {
  const auto schema = MakeApb1Schema();
  ASSERT_EQ(schema.num_dimensions(), 4);
  // Paper Fig. 1: 14,400 codes, 1,440 stores, 15 channels, 24 months.
  EXPECT_EQ(schema.dimension(kApb1Product).hierarchy().LeafCardinality(),
            14'400);
  EXPECT_EQ(schema.dimension(kApb1Customer).hierarchy().LeafCardinality(),
            1'440);
  EXPECT_EQ(schema.dimension(kApb1Channel).hierarchy().LeafCardinality(), 15);
  EXPECT_EQ(schema.dimension(kApb1Time).hierarchy().LeafCardinality(), 24);
}

TEST(Apb1SchemaTest, FactCountMatchesPaper) {
  const auto schema = MakeApb1Schema();
  // Paper Fig. 1: 1,866,240,000 facts = 25% of 14,400*1,440*15*24.
  EXPECT_EQ(schema.MaxFactCount(), 7'464'960'000LL);
  EXPECT_EQ(schema.FactCount(), 1'866'240'000LL);
}

TEST(Apb1SchemaTest, TotalBitmapCountIs76) {
  const auto schema = MakeApb1Schema();
  // Paper Sec. 3.2: 15 (product) + 12 (customer) + 15 (channel) + 34
  // (time) = 76 bitmaps.
  EXPECT_EQ(schema.dimension(kApb1Product).TotalBitmapCount(), 15);
  EXPECT_EQ(schema.dimension(kApb1Customer).TotalBitmapCount(), 12);
  EXPECT_EQ(schema.dimension(kApb1Channel).TotalBitmapCount(), 15);
  EXPECT_EQ(schema.dimension(kApb1Time).TotalBitmapCount(), 34);
  EXPECT_EQ(schema.TotalBitmapCount(), 76);
}

TEST(Apb1SchemaTest, BitmapSizeMatchesPaper) {
  const auto schema = MakeApb1Schema();
  // Paper Sec. 4.4: each bitmap occupies 223 MB (1 bit per fact row).
  const double mib = static_cast<double>(schema.BitmapBytes()) /
                     (1024.0 * 1024.0);
  EXPECT_NEAR(mib, 222.5, 0.5);
}

TEST(Apb1SchemaTest, TuplesPerPage) {
  const auto schema = MakeApb1Schema();
  // 4 KB pages, 20 B tuples -> 204 tuples ("about 200" in Sec. 6.3).
  EXPECT_EQ(schema.physical().TuplesPerPage(), 204);
}

TEST(Apb1SchemaTest, CustomerHierarchyHasTenStoresPerRetailer) {
  const auto schema = MakeApb1Schema();
  const auto& h = schema.dimension(kApb1Customer).hierarchy();
  EXPECT_EQ(h.Cardinality(0), 144);
  EXPECT_EQ(h.Fanout(0), 10);
  EXPECT_EQ(h.TotalBits(), 12);  // 8 retailer bits + 4 store bits
}

TEST(Apb1SchemaTest, TimeUsesSimpleIndexProductEncoded) {
  const auto schema = MakeApb1Schema();
  EXPECT_EQ(schema.dimension(kApb1Product).index_kind(), IndexKind::kEncoded);
  EXPECT_EQ(schema.dimension(kApb1Customer).index_kind(),
            IndexKind::kEncoded);
  EXPECT_EQ(schema.dimension(kApb1Channel).index_kind(), IndexKind::kSimple);
  EXPECT_EQ(schema.dimension(kApb1Time).index_kind(), IndexKind::kSimple);
}

TEST(Apb1SchemaTest, DimensionIdLookup) {
  const auto schema = MakeApb1Schema();
  EXPECT_EQ(schema.DimensionIdOf("product"), kApb1Product);
  EXPECT_EQ(schema.DimensionIdOf("time"), kApb1Time);
  EXPECT_EQ(schema.DimensionIdOf("nope"), -1);
}

TEST(Apb1SchemaTest, AttributeLabels) {
  const auto schema = MakeApb1Schema();
  EXPECT_EQ(schema.dimension(kApb1Time).AttributeLabel(2), "time::month");
  EXPECT_EQ(schema.dimension(kApb1Product).AttributeLabel(3),
            "product::group");
}

TEST(Apb1SchemaTest, ScalesWithChannels) {
  Apb1Params params;
  params.channels = 10;
  const auto schema = MakeApb1Schema(params);
  EXPECT_EQ(schema.dimension(kApb1Product).hierarchy().LeafCardinality(),
            9'600);
  EXPECT_EQ(schema.dimension(kApb1Customer).hierarchy().LeafCardinality(),
            960);
  EXPECT_EQ(schema.dimension(kApb1Channel).hierarchy().LeafCardinality(), 10);
}

TEST(Apb1SchemaTest, ScalesWithMonths) {
  Apb1Params params;
  params.months = 36;
  const auto schema = MakeApb1Schema(params);
  const auto& h = schema.dimension(kApb1Time).hierarchy();
  EXPECT_EQ(h.Cardinality(0), 3);
  EXPECT_EQ(h.Cardinality(1), 12);
  EXPECT_EQ(h.Cardinality(2), 36);
}

TEST(Apb1SchemaTest, DensityControlsFactCount) {
  Apb1Params params;
  params.density = 0.5;
  const auto schema = MakeApb1Schema(params);
  EXPECT_EQ(schema.FactCount(), 3'732'480'000LL);
}

TEST(TinySchemaTest, SameShapeAsApb1) {
  const auto tiny = MakeTinyApb1Schema();
  ASSERT_EQ(tiny.num_dimensions(), 4);
  EXPECT_EQ(tiny.dimension(kApb1Product).hierarchy().num_levels(), 6);
  EXPECT_EQ(tiny.dimension(kApb1Customer).hierarchy().num_levels(), 2);
  EXPECT_EQ(tiny.dimension(kApb1Channel).hierarchy().num_levels(), 1);
  EXPECT_EQ(tiny.dimension(kApb1Time).hierarchy().num_levels(), 3);
}

TEST(TinySchemaTest, MaterialisableSize) {
  const auto tiny = MakeTinyApb1Schema();
  EXPECT_LE(tiny.MaxFactCount(), 1'000'000);
  EXPECT_GT(tiny.FactCount(), 0);
}

TEST(StarSchemaTest, FactPagesCeil) {
  const auto schema = MakeApb1Schema();
  // ceil(1,866,240,000 / 204) pages.
  EXPECT_EQ(schema.FactPages(), 9'148'236);
}

}  // namespace
}  // namespace mdw
