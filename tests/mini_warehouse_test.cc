#include <gtest/gtest.h>

#include <tuple>

#include "core/mini_warehouse.h"
#include "schema/apb1.h"

namespace mdw {
namespace {

// The shared warehouse is expensive to build; construct it once.
class MiniWarehouseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    warehouse_ = new MiniWarehouse(MakeTinyApb1Schema(), /*seed=*/42);
  }
  static void TearDownTestSuite() {
    delete warehouse_;
    warehouse_ = nullptr;
  }

  static MiniWarehouse* warehouse_;
};

MiniWarehouse* MiniWarehouseTest::warehouse_ = nullptr;

TEST_F(MiniWarehouseTest, PopulationMatchesDensity) {
  const auto& schema = warehouse_->schema();
  const double expected =
      schema.density() * static_cast<double>(schema.MaxFactCount());
  EXPECT_NEAR(static_cast<double>(warehouse_->row_count()), expected,
              expected * 0.05);
  EXPECT_GT(warehouse_->row_count(), 0);
}

TEST_F(MiniWarehouseTest, ColumnsWithinLeafCardinalities) {
  const auto& schema = warehouse_->schema();
  for (DimId d = 0; d < schema.num_dimensions(); ++d) {
    const auto card = schema.dimension(d).hierarchy().LeafCardinality();
    for (const auto v :
         warehouse_->facts().columns[static_cast<std::size_t>(d)]) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, card);
    }
  }
}

TEST_F(MiniWarehouseTest, BitmapPathEqualsFullScanSingleDim) {
  const StarQuery q("1MONTH", {{kApb1Time, 2, {5}}});
  EXPECT_EQ(warehouse_->ExecuteWithBitmaps(q),
            warehouse_->ExecuteFullScan(q));
}

TEST_F(MiniWarehouseTest, BitmapPathEqualsFullScanMultiDim) {
  const StarQuery q("1MONTH1GROUP",
                    {{kApb1Time, 2, {3}}, {kApb1Product, 3, {7}}});
  EXPECT_EQ(warehouse_->ExecuteWithBitmaps(q),
            warehouse_->ExecuteFullScan(q));
}

TEST_F(MiniWarehouseTest, BitmapPathEqualsFullScanInList) {
  const StarQuery q("2STORES", {{kApb1Customer, 1, {3, 17}}});
  EXPECT_EQ(warehouse_->ExecuteWithBitmaps(q),
            warehouse_->ExecuteFullScan(q));
}

TEST_F(MiniWarehouseTest, EmptyPredicateQueryAggregatesEverything) {
  const StarQuery q("ALL", {});
  const auto full = warehouse_->ExecuteFullScan(q);
  EXPECT_EQ(full.rows, warehouse_->row_count());
  EXPECT_EQ(warehouse_->ExecuteWithBitmaps(q), full);
}

TEST_F(MiniWarehouseTest, MdhfConfinesRowsScanned) {
  // 1MONTH1GROUP under {time::month, product::group}: IOC1-opt — the
  // fragment contains exactly the matching rows.
  const Fragmentation f(&warehouse_->schema(),
                        {{kApb1Time, 2}, {kApb1Product, 3}});
  const StarQuery q("1MONTH1GROUP",
                    {{kApb1Time, 2, {3}}, {kApb1Product, 3, {7}}});
  const auto exec = warehouse_->ExecuteWithFragmentation(q, f);
  EXPECT_EQ(exec.result, warehouse_->ExecuteFullScan(q));
  EXPECT_EQ(exec.io_class, IoClass::kIoc1Opt);
  EXPECT_EQ(exec.fragments_processed, 1);
  // Every scanned row is a hit: no bitmap filtering needed.
  EXPECT_EQ(exec.rows_scanned, exec.result.rows);
  EXPECT_EQ(exec.bitmaps_read, 0);
}

TEST_F(MiniWarehouseTest, MdhfQ2UsesSuffixBitmaps) {
  const Fragmentation f(&warehouse_->schema(),
                        {{kApb1Time, 2}, {kApb1Product, 3}});
  // Tiny product: 96 codes, 24 groups -> 4 codes per group; code 30 is in
  // group 7.
  const StarQuery q("1CODE1MONTH",
                    {{kApb1Product, 5, {30}}, {kApb1Time, 2, {3}}});
  const auto exec = warehouse_->ExecuteWithFragmentation(q, f);
  EXPECT_EQ(exec.result, warehouse_->ExecuteFullScan(q));
  EXPECT_EQ(exec.query_class, QueryClass::kQ2);
  EXPECT_EQ(exec.fragments_processed, 1);
  EXPECT_GT(exec.bitmaps_read, 0);
  // Only a subset of the fragment's rows match the code.
  EXPECT_GT(exec.rows_scanned, exec.result.rows);
}

TEST_F(MiniWarehouseTest, MdhfUnsupportedStillCorrect) {
  const Fragmentation f(&warehouse_->schema(),
                        {{kApb1Time, 2}, {kApb1Product, 3}});
  const StarQuery q("1STORE", {{kApb1Customer, 1, {17}}});
  const auto exec = warehouse_->ExecuteWithFragmentation(q, f);
  EXPECT_EQ(exec.result, warehouse_->ExecuteFullScan(q));
  EXPECT_EQ(exec.io_class, IoClass::kIoc2NoSupp);
  // All fragments processed; all rows scanned.
  EXPECT_EQ(exec.rows_scanned, warehouse_->row_count());
}

TEST_F(MiniWarehouseTest, MdhfInListAcrossGroupsStaysCorrect) {
  // Codes 2 and 50 belong to different groups: the suffix-bitmap shortcut
  // must not be applied (regression test for cross-parent aliasing).
  const Fragmentation f(&warehouse_->schema(),
                        {{kApb1Time, 2}, {kApb1Product, 3}});
  const StarQuery q("2CODES", {{kApb1Product, 5, {2, 50}}});
  const auto exec = warehouse_->ExecuteWithFragmentation(q, f);
  EXPECT_EQ(exec.result, warehouse_->ExecuteFullScan(q));
}

TEST_F(MiniWarehouseTest, MeasuresArePositive) {
  const StarQuery q("ALL", {});
  const auto r = warehouse_->ExecuteFullScan(q);
  EXPECT_GT(r.units_sold, r.rows);          // each row sells >= 1 unit
  EXPECT_GT(r.dollar_sales_cents, r.rows);  // each row >= 100 cents
}

// ---- Exhaustive cross-validation sweep ----
// For every fragmentation shape and every paper query type, the MDHF
// execution must equal the full scan. This is the central end-to-end
// property of the reproduction: fragment confinement + hierarchical
// encoded bitmap evaluation never changes query results.

struct SweepCase {
  const char* frag_label;
  std::vector<FragAttr> attrs;
};

class MdhfEquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 public:
  static const std::vector<SweepCase>& Fragmentations() {
    static const std::vector<SweepCase>* cases = new std::vector<SweepCase>{
        {"none", {}},
        {"month", {{kApb1Time, 2}}},
        {"quarter", {{kApb1Time, 1}}},
        {"group", {{kApb1Product, 3}}},
        {"code", {{kApb1Product, 5}}},
        {"store", {{kApb1Customer, 1}}},
        {"retailer", {{kApb1Customer, 0}}},
        {"channel", {{kApb1Channel, 0}}},
        {"month_group", {{kApb1Time, 2}, {kApb1Product, 3}}},
        {"month_code", {{kApb1Time, 2}, {kApb1Product, 5}}},
        {"quarter_family", {{kApb1Time, 1}, {kApb1Product, 2}}},
        {"month_group_store",
         {{kApb1Time, 2}, {kApb1Product, 3}, {kApb1Customer, 1}}},
        {"all_four",
         {{kApb1Time, 1},
          {kApb1Product, 2},
          {kApb1Customer, 0},
          {kApb1Channel, 0}}},
    };
    return *cases;
  }

  static const std::vector<StarQuery>& Queries() {
    static const std::vector<StarQuery>* queries =
        new std::vector<StarQuery>{
            StarQuery("1MONTH", {{kApb1Time, 2, {5}}}),
            StarQuery("1QUARTER", {{kApb1Time, 1, {2}}}),
            StarQuery("1YEAR", {{kApb1Time, 0, {0}}}),
            StarQuery("1GROUP", {{kApb1Product, 3, {7}}}),
            StarQuery("1CODE", {{kApb1Product, 5, {30}}}),
            StarQuery("1DIVISION", {{kApb1Product, 0, {1}}}),
            StarQuery("1STORE", {{kApb1Customer, 1, {17}}}),
            StarQuery("1RETAILER", {{kApb1Customer, 0, {3}}}),
            StarQuery("1CHANNEL", {{kApb1Channel, 0, {2}}}),
            StarQuery("1MONTH1GROUP",
                      {{kApb1Time, 2, {3}}, {kApb1Product, 3, {7}}}),
            StarQuery("1CODE1QUARTER",
                      {{kApb1Product, 5, {30}}, {kApb1Time, 1, {2}}}),
            StarQuery("1GROUP1STORE",
                      {{kApb1Product, 3, {7}}, {kApb1Customer, 1, {17}}}),
            StarQuery("3DIM", {{kApb1Product, 2, {5}},
                               {kApb1Time, 1, {1}},
                               {kApb1Channel, 0, {1}}}),
            StarQuery("IN_LIST", {{kApb1Product, 5, {1, 2, 50}},
                                  {kApb1Time, 2, {0, 6}}}),
        };
    return *queries;
  }
};

TEST_P(MdhfEquivalenceSweep, MdhfEqualsFullScan) {
  static MiniWarehouse* warehouse =
      new MiniWarehouse(MakeTinyApb1Schema(), /*seed=*/42);
  const auto [frag_index, query_index] = GetParam();
  const auto& sweep_case =
      Fragmentations()[static_cast<std::size_t>(frag_index)];
  const auto& query = Queries()[static_cast<std::size_t>(query_index)];
  const Fragmentation f(&warehouse->schema(), sweep_case.attrs);
  const auto exec = warehouse->ExecuteWithFragmentation(query, f);
  const auto expected = warehouse->ExecuteFullScan(query);
  EXPECT_EQ(exec.result, expected)
      << "fragmentation " << sweep_case.frag_label << " query "
      << query.name();
  // The bitmap path must agree as well.
  EXPECT_EQ(warehouse->ExecuteWithBitmaps(query), expected);
}

using SweepParam = std::tuple<int, int>;

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto [f, q] = info.param;
  return MdhfEquivalenceSweep::Fragmentations()[static_cast<std::size_t>(f)]
             .frag_label +
         std::string("_") +
         MdhfEquivalenceSweep::Queries()[static_cast<std::size_t>(q)].name();
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, MdhfEquivalenceSweep,
    ::testing::Combine(::testing::Range(0, 13), ::testing::Range(0, 14)),
    SweepName);

}  // namespace
}  // namespace mdw
