#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "core/mini_warehouse.h"
#include "core/warehouse.h"
#include "fragment/star_query.h"
#include "schema/apb1.h"
#include "sim/simulator.h"
#include "workload/workload_driver.h"

namespace mdw {
namespace {

constexpr std::uint64_t kSeed = 42;

std::vector<FragAttr> MonthGroup() {
  return {{kApb1Time, 2}, {kApb1Product, 3}};
}

Warehouse TinyMaterialized() {
  return Warehouse({.schema = MakeTinyApb1Schema(),
                    .fragmentation = MonthGroup(),
                    .backend = BackendKind::kMaterialized,
                    .seed = kSeed});
}

// A sweep over every APB-1 query type, with values valid on the tiny
// schema (12 months, 4 quarters, 24 groups, 96 codes, 40 stores).
std::vector<StarQuery> QuerySweep() {
  std::vector<StarQuery> queries;
  for (std::int64_t month : {0, 3, 11}) {
    for (std::int64_t group : {0, 7, 23}) {
      queries.push_back(apb1_queries::OneMonthOneGroup(month, group));
    }
  }
  for (std::int64_t month : {1, 5}) {
    queries.push_back(apb1_queries::OneMonth(month));
  }
  for (std::int64_t code : {0, 30, 95}) {
    queries.push_back(apb1_queries::OneCode(code));
  }
  for (std::int64_t quarter : {0, 2}) {
    queries.push_back(apb1_queries::OneQuarter(quarter));
  }
  queries.push_back(apb1_queries::OneCodeOneMonth(30, 3));
  queries.push_back(apb1_queries::OneCodeOneQuarter(30, 2));
  queries.push_back(apb1_queries::OneStore(17));
  queries.push_back(apb1_queries::OneGroupOneStore(7, 17));
  return queries;
}

// ---------------------------------------------------------------------------
// Backend parity: the façade's materialized execution must equal the
// ground-truth full scan of an identically-seeded MiniWarehouse.

TEST(WarehouseMaterializedTest, ExecuteMatchesFullScanAcrossQuerySweep) {
  const Warehouse warehouse = TinyMaterialized();
  const MiniWarehouse reference(MakeTinyApb1Schema(), kSeed);
  ASSERT_EQ(warehouse.materialized()->row_count(), reference.row_count());

  for (const auto& query : QuerySweep()) {
    const auto outcome = warehouse.Execute(query);
    ASSERT_TRUE(outcome.aggregate.has_value()) << query.name();
    EXPECT_EQ(*outcome.aggregate, reference.ExecuteFullScan(query))
        << query.name();
    EXPECT_EQ(outcome.backend, BackendKind::kMaterialized);
    EXPECT_FALSE(outcome.sim.has_value());
  }
}

TEST(WarehouseMaterializedTest, OutcomeCarriesPlanFacts) {
  const Warehouse warehouse = TinyMaterialized();
  const auto outcome =
      warehouse.Execute(apb1_queries::OneMonthOneGroup(3, 7));
  EXPECT_EQ(outcome.query_class, QueryClass::kQ1);
  EXPECT_EQ(outcome.io_class, IoClass::kIoc1Opt);
  EXPECT_EQ(outcome.fragments_processed, 1);
  EXPECT_EQ(outcome.bitmaps_per_fragment, 0);
  // Hierarchy-aligned: the fragment is fully covered, so it is answered
  // from the measure prefix sums without scanning a row.
  EXPECT_EQ(outcome.rows_scanned, 0);
  EXPECT_EQ(outcome.fragments_summarized, 1);
  EXPECT_GT(outcome.rows_summarized, 0);
}

TEST(WarehouseMaterializedTest, BatchSumsAggregates) {
  const Warehouse warehouse = TinyMaterialized();
  const std::vector<StarQuery> queries = {apb1_queries::OneMonth(1),
                                          apb1_queries::OneMonth(5),
                                          apb1_queries::OneQuarter(2)};
  const auto batch = warehouse.ExecuteBatch(queries);
  ASSERT_EQ(batch.queries.size(), 3u);
  ASSERT_TRUE(batch.total_aggregate.has_value());
  std::int64_t rows = 0;
  for (const auto& q : batch.queries) rows += q.aggregate->rows;
  EXPECT_EQ(batch.total_aggregate->rows, rows);
  EXPECT_GT(rows, 0);
}

// ---------------------------------------------------------------------------
// Lifetime: plans and copies must not dangle when the original façade (or
// the objects it was built from) go away — the hazard of the raw-pointer
// wiring the façade replaces.

TEST(WarehouseLifetimeTest, PlanOutlivesWarehouse) {
  std::optional<QueryPlan> plan;
  {
    const Warehouse warehouse = TinyMaterialized();
    plan = warehouse.Plan(apb1_queries::OneQuarter(2));
  }
  // The plan keeps fragmentation and schema alive via shared ownership.
  EXPECT_EQ(plan->FragmentCount(), 3 * 24);
  EXPECT_EQ(plan->fragmentation().Label(), "{time::month, product::group}");
  EXPECT_GT(plan->ExpectedHits(), 0);
}

TEST(WarehouseLifetimeTest, CopiesShareStateAndOutliveTheOriginal) {
  std::optional<Warehouse> copy;
  const StarQuery query = apb1_queries::OneMonthOneGroup(3, 7);
  MiniWarehouse::AggregateResult original_result;
  {
    const Warehouse warehouse = TinyMaterialized();
    original_result = *warehouse.Execute(query).aggregate;
    copy = warehouse;
  }
  EXPECT_EQ(*copy->Execute(query).aggregate, original_result);
}

// ---------------------------------------------------------------------------
// Simulated backend smoke tests at the paper's full APB-1 scale.

TEST(WarehouseSimulatedTest, Apb1ScaleSingleQuery) {
  SimConfig sim;
  sim.num_disks = 20;
  sim.num_nodes = 4;
  const Warehouse warehouse({.schema = MakeApb1Schema(),
                             .fragmentation = MonthGroup(),
                             .backend = BackendKind::kSimulated,
                             .sim = sim});
  const auto outcome = warehouse.Execute(apb1_queries::OneMonthOneGroup(3, 41));
  EXPECT_EQ(outcome.backend, BackendKind::kSimulated);
  EXPECT_EQ(outcome.query_class, QueryClass::kQ1);
  ASSERT_TRUE(outcome.sim.has_value());
  EXPECT_GT(outcome.response_ms, 0);
  EXPECT_EQ(outcome.response_ms, outcome.sim->avg_response_ms);
  EXPECT_GT(outcome.sim->disk_ios, 0);
  EXPECT_FALSE(outcome.aggregate.has_value());
}

TEST(WarehouseSimulatedTest, FacadeMatchesDirectSimulatorConstruction) {
  SimConfig sim;
  sim.num_disks = 20;
  sim.num_nodes = 4;
  const auto query = apb1_queries::OneMonthOneGroup(3, 41);

  const Warehouse warehouse({.schema = MakeApb1Schema(),
                             .fragmentation = MonthGroup(),
                             .backend = BackendKind::kSimulated,
                             .sim = sim});
  const auto via_facade = warehouse.Execute(query);

  const auto schema = MakeApb1Schema();
  const Fragmentation frag(&schema, MonthGroup());
  const auto direct = Simulator(&schema, &frag, sim).RunSingleUser({query});
  EXPECT_EQ(via_facade.response_ms, direct.avg_response_ms);
  EXPECT_EQ(via_facade.sim->disk_ios, direct.disk_ios);
}

TEST(WarehouseSimulatedTest, BatchRunsMultiUserStreams) {
  SimConfig sim;
  sim.num_disks = 20;
  sim.num_nodes = 4;
  const Warehouse warehouse({.schema = MakeApb1Schema(),
                             .fragmentation = MonthGroup(),
                             .backend = BackendKind::kSimulated,
                             .sim = sim});
  const std::vector<StarQuery> queries = {
      apb1_queries::OneMonthOneGroup(1, 10),
      apb1_queries::OneMonthOneGroup(2, 20),
      apb1_queries::OneMonthOneGroup(3, 30),
      apb1_queries::OneMonthOneGroup(4, 40)};

  const auto batch = warehouse.ExecuteBatch(queries, /*streams=*/2);
  ASSERT_TRUE(batch.sim.has_value());
  EXPECT_EQ(batch.sim->response_ms.size(), queries.size());
  EXPECT_EQ(batch.queries.size(), queries.size());
  // Multi-stream batches attribute response times by submitted query id
  // (not completion order), so per-query latency survives streams > 1.
  for (std::size_t i = 0; i < batch.queries.size(); ++i) {
    EXPECT_EQ(batch.queries[i].response_ms,
              batch.sim->response_by_query_ms[i]);
    EXPECT_GT(batch.queries[i].response_ms, 0);
  }
  EXPECT_GT(batch.makespan_ms, 0);
  EXPECT_GT(batch.ThroughputPerSecond(), 0);

  // Two streams finish no later than one stream running back-to-back.
  const auto serial = warehouse.ExecuteBatch(queries, /*streams=*/1);
  EXPECT_LE(batch.makespan_ms, serial.makespan_ms * 1.001);
  // Single-stream batches attribute per-query response times.
  for (std::size_t i = 0; i < serial.queries.size(); ++i) {
    EXPECT_EQ(serial.queries[i].response_ms, serial.sim->response_ms[i]);
  }
}

// ---------------------------------------------------------------------------
// WorkloadDriver plumbing: drivers target the façade, on either backend.

TEST(WarehouseDriverTest, DriverRunsAgainstSimulatedFacade) {
  SimConfig sim;
  sim.num_disks = 20;
  sim.num_nodes = 4;
  WorkloadDriver driver(Warehouse({.schema = MakeApb1Schema(),
                                   .fragmentation = MonthGroup(),
                                   .backend = BackendKind::kSimulated,
                                   .sim = sim}));
  const auto batch = driver.RunBatch(QueryType::k1Month1Group, 4);
  ASSERT_TRUE(batch.sim.has_value());
  EXPECT_EQ(batch.sim->response_ms.size(), 4u);
  EXPECT_EQ(batch.queries.size(), 4u);
}

TEST(WarehouseDriverTest, DriverRunsAgainstMaterializedFacade) {
  WorkloadDriver driver(TinyMaterialized());
  const auto batch = driver.RunBatch(QueryType::k1Month1Group, 3);
  EXPECT_FALSE(batch.sim.has_value());
  ASSERT_EQ(batch.queries.size(), 3u);
  for (const auto& outcome : batch.queries) {
    ASSERT_TRUE(outcome.aggregate.has_value());
    EXPECT_EQ(outcome.query_class, QueryClass::kQ1);
  }
}

TEST(WarehouseDriverTest, CompatConstructorMatchesFacadeConstruction) {
  SimConfig sim;
  sim.num_disks = 20;
  sim.num_nodes = 4;
  const auto schema = MakeApb1Schema();
  const Fragmentation frag(&schema, MonthGroup());
  WorkloadDriver compat(&schema, &frag, sim);
  WorkloadDriver facade(Warehouse({.schema = MakeApb1Schema(),
                                   .fragmentation = MonthGroup(),
                                   .backend = BackendKind::kSimulated,
                                   .sim = sim}));
  const auto a = compat.RunSingleUser(QueryType::k1Group1Store, 3);
  const auto b = facade.RunSingleUser(QueryType::k1Group1Store, 3);
  EXPECT_EQ(a.response_ms, b.response_ms);
}

}  // namespace
}  // namespace mdw
