#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "alloc/disk_allocation.h"
#include "schema/apb1.h"

namespace mdw {
namespace {

class AllocationTest : public ::testing::Test {
 protected:
  AllocationTest()
      : schema_(MakeApb1Schema()),
        frag_(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}}) {}

  DiskAllocation Make(int disks, BitmapPlacement placement =
                                      BitmapPlacement::kStaggered,
                      int gap = 0, int bitmaps = 12) {
    AllocationConfig config;
    config.num_disks = disks;
    config.bitmap_placement = placement;
    config.round_gap = gap;
    return DiskAllocation(&frag_, config, bitmaps);
  }

  StarSchema schema_;
  Fragmentation frag_;
};

TEST_F(AllocationTest, RoundRobinFactPlacement) {
  const auto alloc = Make(100);
  EXPECT_EQ(alloc.DiskOfFragment(0), 0);
  EXPECT_EQ(alloc.DiskOfFragment(99), 99);
  EXPECT_EQ(alloc.DiskOfFragment(100), 0);
  EXPECT_EQ(alloc.DiskOfFragment(11'519), 11'519 % 100);
}

TEST_F(AllocationTest, StaggeredBitmapPlacement) {
  // Paper Fig. 2: bitmap fragments of fragment on disk j go to disks
  // j+1, j+2, ... (mod d).
  const auto alloc = Make(100);
  const FragId id = 205;  // fact disk 5
  EXPECT_EQ(alloc.DiskOfFragment(id), 5);
  for (int b = 0; b < 12; ++b) {
    EXPECT_EQ(alloc.DiskOfBitmapFragment(id, b), 6 + b);
  }
}

TEST_F(AllocationTest, StaggeredWrapsAroundDiskCount) {
  const auto alloc = Make(10);
  const FragId id = 9;  // fact disk 9
  EXPECT_EQ(alloc.DiskOfBitmapFragment(id, 0), 0);
  EXPECT_EQ(alloc.DiskOfBitmapFragment(id, 5), 5);
}

TEST_F(AllocationTest, StaggeredBitmapsAllDistinctWhenEnoughDisks) {
  const auto alloc = Make(100);
  std::set<int> disks;
  for (int b = 0; b < 12; ++b) {
    disks.insert(alloc.DiskOfBitmapFragment(42, b));
  }
  EXPECT_EQ(disks.size(), 12u);
  // None of them is the fact disk itself.
  EXPECT_EQ(disks.count(alloc.DiskOfFragment(42)), 0u);
}

TEST_F(AllocationTest, SameDiskPlacementColocates) {
  const auto alloc = Make(100, BitmapPlacement::kSameDisk);
  for (int b = 0; b < 12; ++b) {
    EXPECT_EQ(alloc.DiskOfBitmapFragment(77, b), alloc.DiskOfFragment(77));
  }
}

TEST_F(AllocationTest, ExtentOrdinalIsRoundNumber) {
  const auto alloc = Make(100);
  EXPECT_EQ(alloc.FactExtentOrdinal(0), 0);
  EXPECT_EQ(alloc.FactExtentOrdinal(99), 0);
  EXPECT_EQ(alloc.FactExtentOrdinal(100), 1);
  EXPECT_EQ(alloc.FactExtentOrdinal(11'519), 115);
}

TEST_F(AllocationTest, FragmentsPerDiskBalanced) {
  const auto alloc = Make(100);
  // 11,520 fragments over 100 disks: 115 or 116 each (11,520 = 115.2*100).
  std::int64_t total = 0;
  for (int d = 0; d < 100; ++d) {
    const auto n = alloc.FragmentsOnDisk(d);
    EXPECT_GE(n, 115);
    EXPECT_LE(n, 116);
    total += n;
  }
  EXPECT_EQ(total, 11'520);
}

TEST_F(AllocationTest, GapSchemeStillCoversAllDisksEvenly) {
  const auto alloc = Make(100, BitmapPlacement::kStaggered, /*gap=*/1);
  std::vector<std::int64_t> counts(100, 0);
  for (FragId id = 0; id < frag_.FragmentCount(); ++id) {
    ++counts[static_cast<std::size_t>(alloc.DiskOfFragment(id))];
  }
  for (int d = 0; d < 100; ++d) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<std::size_t>(d)]),
                115.2, 2.0);
  }
}

TEST_F(AllocationTest, GapSchemeBreaksStrideClustering) {
  // Query 1CODE touches every 480th fragment. With d=100 plain round
  // robin this clusters on 5 disks (paper Sec. 4.6); a gap of 1 spreads
  // the same fragments over far more disks.
  const auto plain = Make(100);
  const auto gapped = Make(100, BitmapPlacement::kStaggered, /*gap=*/1);
  std::set<int> plain_disks, gapped_disks;
  for (int m = 0; m < 24; ++m) {
    const FragId id = static_cast<FragId>(m) * 480 + 41;
    plain_disks.insert(plain.DiskOfFragment(id));
    gapped_disks.insert(gapped.DiskOfFragment(id));
  }
  EXPECT_EQ(plain_disks.size(), 5u);
  EXPECT_GT(gapped_disks.size(), 15u);
}

TEST_F(AllocationTest, BitmapExtentOrdinalsDifferPerBitmap) {
  const auto alloc = Make(100);
  EXPECT_NE(alloc.BitmapExtentOrdinal(205, 0),
            alloc.BitmapExtentOrdinal(205, 1));
  EXPECT_NE(alloc.BitmapExtentOrdinal(205, 0),
            alloc.BitmapExtentOrdinal(305, 0));
}

TEST_F(AllocationTest, StaggeredBitmapNeverCollidesWithItsFactDisk) {
  // Invariant behind parallel bitmap I/O: as long as there are more disks
  // than bitmaps, a staggered bitmap fragment never lands on its fact
  // fragment's disk — the offset 1 + b stays strictly inside (0, d).
  for (const int disks : {13, 50, 100}) {
    const auto alloc = Make(disks);
    for (const FragId id : {FragId{0}, FragId{205}, FragId{11'519}}) {
      for (int b = 0; b < 12; ++b) {
        EXPECT_NE(alloc.DiskOfBitmapFragment(id, b),
                  alloc.DiskOfFragment(id))
            << "d=" << disks << " id=" << id << " b=" << b;
      }
    }
  }
}

TEST_F(AllocationTest, SameNodePlacementPreservesOwnerWhenNodesDivideDisks) {
  // Shared Nothing (footnote 3): with node_count | num_disks, the
  // node-stride stagger keeps every bitmap fragment on a disk of the fact
  // fragment's owner node (ownership = disk % node_count).
  AllocationConfig config;
  config.num_disks = 100;
  config.bitmap_placement = BitmapPlacement::kSameNode;
  config.node_count = 20;
  const DiskAllocation alloc(&frag_, config, /*bitmap_count=*/12);
  for (const FragId id : {FragId{0}, FragId{42}, FragId{11'519}}) {
    const int owner = alloc.DiskOfFragment(id) % config.node_count;
    for (int b = 0; b < 12; ++b) {
      EXPECT_EQ(alloc.DiskOfBitmapFragment(id, b) % config.node_count, owner)
          << "id=" << id << " b=" << b;
    }
  }
}

TEST_F(AllocationTest, RoundRobinBalancedWithinOneOnAnyDiskCount) {
  // Plain round robin (no gap) is balanced within +-1 fragment per disk,
  // including disk counts that do not divide the fragment count.
  for (const int disks : {7, 10, 33, 100}) {
    const auto alloc = Make(disks);
    std::int64_t min = frag_.FragmentCount(), max = 0, total = 0;
    for (int d = 0; d < disks; ++d) {
      const auto n = alloc.FragmentsOnDisk(d);
      min = std::min(min, n);
      max = std::max(max, n);
      total += n;
    }
    EXPECT_LE(max - min, 1) << "d=" << disks;
    EXPECT_EQ(total, frag_.FragmentCount()) << "d=" << disks;
  }
}

TEST_F(AllocationTest, SingleDiskDegenerate) {
  const auto alloc = Make(1);
  for (FragId id = 0; id < 10; ++id) {
    EXPECT_EQ(alloc.DiskOfFragment(id), 0);
    EXPECT_EQ(alloc.DiskOfBitmapFragment(id, 3), 0);
  }
  EXPECT_EQ(alloc.FragmentsOnDisk(0), frag_.FragmentCount());
}

}  // namespace
}  // namespace mdw
