#include <gtest/gtest.h>

#include "fragment/star_query.h"
#include "schema/apb1.h"

namespace mdw {
namespace {

class StarQueryTest : public ::testing::Test {
 protected:
  StarQueryTest() : schema_(MakeApb1Schema()) {}
  StarSchema schema_;
};

TEST_F(StarQueryTest, FactoryQueriesHaveExpectedShape) {
  const auto store = apb1_queries::OneStore(7);
  EXPECT_EQ(store.name(), "1STORE");
  ASSERT_EQ(store.num_predicates(), 1);
  EXPECT_EQ(store.predicates()[0].dim, kApb1Customer);

  const auto mg = apb1_queries::OneMonthOneGroup(3, 41);
  EXPECT_EQ(mg.num_predicates(), 2);
  EXPECT_NE(mg.PredicateOn(kApb1Time), nullptr);
  EXPECT_NE(mg.PredicateOn(kApb1Product), nullptr);
  EXPECT_EQ(mg.PredicateOn(kApb1Channel), nullptr);
}

TEST_F(StarQueryTest, SelectivitySingleDimension) {
  EXPECT_NEAR(apb1_queries::OneStore(7).Selectivity(schema_), 1.0 / 1'440,
              1e-15);
  EXPECT_NEAR(apb1_queries::OneMonth(3).Selectivity(schema_), 1.0 / 24,
              1e-15);
  EXPECT_NEAR(apb1_queries::OneCode(35).Selectivity(schema_), 1.0 / 14'400,
              1e-15);
}

TEST_F(StarQueryTest, SelectivityMultiplies) {
  const auto q = apb1_queries::OneMonthOneGroup(3, 41);
  EXPECT_NEAR(q.Selectivity(schema_), 1.0 / 24 / 480, 1e-15);
  // Paper Sec. 6.3: 1CODE1QUARTER has 16,200 hit rows.
  EXPECT_NEAR(apb1_queries::OneCodeOneQuarter(35, 2).ExpectedHits(schema_),
              16'200.0, 1e-6);
}

TEST_F(StarQueryTest, InListSelectivityScalesWithValues) {
  const StarQuery two("2STORES", {{kApb1Customer, 1, {3, 17}}});
  EXPECT_NEAR(two.Selectivity(schema_), 2.0 / 1'440, 1e-15);
}

TEST_F(StarQueryTest, EmptyQuerySelectsEverything) {
  const StarQuery all("ALL", {});
  EXPECT_DOUBLE_EQ(all.Selectivity(schema_), 1.0);
  EXPECT_DOUBLE_EQ(all.ExpectedHits(schema_),
                   static_cast<double>(schema_.FactCount()));
}

TEST_F(StarQueryTest, HigherLevelsAreLessSelective) {
  double previous = 0;
  for (Depth d = 5; d >= 0; --d) {
    const StarQuery q("probe", {{kApb1Product, d, {0}}});
    const double s = q.Selectivity(schema_);
    EXPECT_GT(s, previous);
    previous = s;
  }
}

TEST_F(StarQueryTest, DuplicateDimensionAborts) {
  EXPECT_DEATH(StarQuery("bad", {{kApb1Time, 2, {1}}, {kApb1Time, 1, {0}}}),
               "at most one predicate per dimension");
}

TEST_F(StarQueryTest, EmptyValueListAborts) {
  EXPECT_DEATH(StarQuery("bad", {{kApb1Time, 2, {}}}),
               "at least one value");
}

}  // namespace
}  // namespace mdw
